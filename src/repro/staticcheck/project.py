"""Parsed view of the codebase the contract rules run against.

Everything here is *static*: the checker never imports the code it
checks.  A :class:`ParsedModule` is one file's AST plus the derived
tables rules need constantly — an import-alias map for resolving dotted
names, and the ``# repro: noqa[...]`` suppression map.  A
:class:`Project` is the set of parsed modules plus cross-module indexes:
a class table (for ancestry walks), the exception taxonomy (everything
deriving from ``ReproError``), and the snapshot-codec allowlist, which is
read out of ``repro/persist/codec.py``'s ``SNAPSHOT_CLASSES`` literal so
rule R2 can never drift from what the codec actually accepts.
"""

import ast
import re
from pathlib import Path

__all__ = ["ClassInfo", "ParsedModule", "Project", "dotted_to_key"]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[R1,R7] free-text reason``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


def _derive_module(path: Path) -> str:
    """Dotted module name, anchored at the rightmost ``repro`` directory.

    Files outside any ``repro`` tree (ad-hoc fixtures) get their stem, so
    package-scoped rules simply do not apply to them.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    return ".".join(parts)


def dotted_to_key(dotted: str) -> str:
    """``repro.core.subcube.Subcube`` -> the codec's ``module:qualname`` form."""
    module, _, qualname = dotted.rpartition(".")
    return f"{module}:{qualname}"


class ParsedModule:
    """One source file: AST + import table + suppression map."""

    def __init__(self, path, *, source: str | None = None,
                 root: Path | None = None, module: str | None = None):
        self.path = Path(path)
        if source is None:
            source = self.path.read_text()
        self.source = source
        rel = self.path
        if root is not None:
            try:
                rel = self.path.resolve().relative_to(Path(root).resolve())
            except ValueError:
                rel = self.path
        self.relpath = rel.as_posix()
        self.module = module if module is not None else _derive_module(self.path)
        self.tree = ast.parse(source, filename=str(self.path))
        self.lines = source.splitlines()
        self.noqa = self._parse_noqa(self.lines)
        self.imports = self._import_table(self.tree, self.module)

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_noqa(lines: list[str]) -> dict[int, frozenset]:
        table = {}
        for lineno, line in enumerate(lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[lineno] = frozenset({"*"})
            else:
                table[lineno] = frozenset(
                    r.strip() for r in rules.split(",") if r.strip()
                )
        return table

    @staticmethod
    def _import_table(tree: ast.AST, module: str) -> dict[str, str]:
        """Local name -> absolute dotted target, over the whole file.

        Function-local imports land in the same flat table; for rule
        resolution that approximation only ever widens matches.
        """
        table: dict[str, str] = {}
        package = module.rpartition(".")[0]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = module.split(".")
                    # one level strips the module name itself, further
                    # levels strip packages.
                    prefix_parts = prefix_parts[: len(prefix_parts) - node.level]
                    if not prefix_parts:
                        prefix_parts = [package] if package else []
                    base = ".".join(p for p in (".".join(prefix_parts), base) if p)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name for a ``Name``/``Attribute`` chain, imports applied.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
        file holds ``import numpy as np``; unresolvable shapes (calls,
        subscripts at the head) return ``None``.  Bare local names
        resolve to themselves, so builtins stay recognizable.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        target = self.imports.get(parts[0])
        if target is not None:
            parts[0:1] = target.split(".")
        return ".".join(parts)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.noqa.get(lineno)
        return rules is not None and ("*" in rules or rule in rules)


class ClassInfo:
    """One class definition: location, resolved bases, snapshot hooks."""

    def __init__(self, mod: ParsedModule, node: ast.ClassDef, qualname: str):
        self.mod = mod
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.module = mod.module
        self.bases = [
            dotted for dotted in (mod.resolve(b) for b in node.bases)
            if dotted is not None
        ]
        self.decorators = [
            dotted for dotted in (mod.resolve(_decorator_head(d))
                                  for d in node.decorator_list)
            if dotted is not None
        ]

    @property
    def key(self) -> str:
        """The codec-allowlist form, ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qualname}"

    def own_snapshot_skip(self) -> frozenset:
        """Names listed in this class body's ``_snapshot_skip_`` literal."""
        names: set = set()
        for stmt in self.node.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "_snapshot_skip_"
                            for t in stmt.targets)):
                try:
                    value = ast.literal_eval(stmt.value)
                except ValueError:
                    continue
                if isinstance(value, (tuple, list, set, frozenset)):
                    names.update(str(item) for item in value)
        return frozenset(names)

    def own_init_assigned(self) -> frozenset:
        """Attributes assigned inside ``_snapshot_init_`` (rebuilt caches)."""
        for stmt in self.node.body:
            if (isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "_snapshot_init_"):
                return frozenset(
                    node.attr for node in ast.walk(stmt)
                    if isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
        return frozenset()


def _decorator_head(node: ast.AST) -> ast.AST:
    return node.func if isinstance(node, ast.Call) else node


class Project:
    """All parsed modules plus the cross-module indexes rules consult."""

    def __init__(self, modules, *, codec_allowlist=None):
        self.modules: list[ParsedModule] = list(modules)
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.classes_by_dotted: dict[str, ClassInfo] = {}
        for mod in self.modules:
            for info in _iter_classes(mod):
                self.classes_by_name.setdefault(info.name, []).append(info)
                self.classes_by_dotted[info.dotted] = info
        if codec_allowlist is None:
            codec_allowlist = self._extract_codec_allowlist()
        self.codec_allowlist = frozenset(codec_allowlist)
        self.taxonomy = self._exception_taxonomy()

    # ------------------------------------------------------------------
    def _extract_codec_allowlist(self) -> frozenset:
        """``SNAPSHOT_CLASSES`` parsed out of the scanned codec module."""
        for mod in self.modules:
            if not mod.module.endswith("persist.codec"):
                continue
            for stmt in mod.tree.body:
                if not (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == "SNAPSHOT_CLASSES"
                                for t in stmt.targets)):
                    continue
                value = stmt.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "frozenset" and value.args):
                    value = value.args[0]
                try:
                    items = ast.literal_eval(value)
                except ValueError:
                    continue
                return frozenset(str(item) for item in items)
        return frozenset()

    def _exception_taxonomy(self) -> frozenset:
        """Bare names of classes deriving (transitively) from ReproError."""
        names = {"ReproError"}
        changed = True
        while changed:
            changed = False
            for infos in self.classes_by_name.values():
                for info in infos:
                    if info.name in names:
                        continue
                    for base in info.bases:
                        if base.rpartition(".")[2] in names:
                            names.add(info.name)
                            changed = True
                            break
        return frozenset(names)

    def is_taxonomy_exception(self, dotted: str) -> bool:
        """Does ``dotted`` name an exception in the ReproError taxonomy?

        Falls back to the import path for scans that do not include
        ``repro/common/exceptions.py`` itself (fixture trees).
        """
        if dotted.rpartition(".")[2] in self.taxonomy:
            return True
        return dotted.startswith("repro.common.exceptions.")

    # ------------------------------------------------------------------
    def find_class(self, dotted: str) -> ClassInfo | None:
        """Look a class up by dotted path, falling back to a unique bare name."""
        info = self.classes_by_dotted.get(dotted)
        if info is not None:
            return info
        candidates = self.classes_by_name.get(dotted.rpartition(".")[2], [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def ancestry(self, info: ClassInfo) -> list[str]:
        """Resolved dotted names of all (statically reachable) ancestors."""
        seen: list[str] = []
        stack = list(info.bases)
        guard = set()
        while stack:
            base = stack.pop()
            if base in guard:
                continue
            guard.add(base)
            seen.append(base)
            parent = self.find_class(base)
            if parent is not None:
                stack.extend(parent.bases)
        return seen

    def derives_from(self, info: ClassInfo, dotted_bases) -> bool:
        """Does ``info`` transitively subclass any of ``dotted_bases``?

        Matches on the full dotted path and, for robustness against
        re-export indirection, on the bare class name.
        """
        wanted_full = set(dotted_bases)
        wanted_bare = {d.rpartition(".")[2] for d in dotted_bases}
        for base in self.ancestry(info):
            if base in wanted_full or base.rpartition(".")[2] in wanted_bare:
                return True
        return False

    def snapshot_skip(self, info: ClassInfo) -> frozenset:
        """``_snapshot_skip_`` + ``_snapshot_init_`` names, ancestors included."""
        names = set(info.own_snapshot_skip()) | set(info.own_init_assigned())
        for base in self.ancestry(info):
            parent = self.find_class(base)
            if parent is not None:
                names |= parent.own_snapshot_skip()
                names |= parent.own_init_assigned()
        return frozenset(names)


def _iter_classes(mod: ParsedModule):
    def visit(body, prefix):
        for node in body:
            if isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                yield ClassInfo(mod, node, qualname)
                yield from visit(node.body, f"{qualname}.")

    yield from visit(mod.tree.body, "")
