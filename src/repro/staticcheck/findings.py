"""Findings: what a rule reports, and how findings are fingerprinted.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`fingerprint` deliberately excludes the line *number* and keeps the
line *text*: baselined findings survive unrelated edits that shift code
up or down, but disappear (go "stale") as soon as the offending line
itself changes — the baseline can only shrink honestly.
"""

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # root-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    rule: str  # "R1" .. "R9"
    message: str
    text: str = ""  # the stripped source line (fingerprint anchor)

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        return f"{self.rule}|{self.path}|{self.text}"

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        """One human-readable line: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
