"""``repro.staticcheck``: the AST contract checker.

Twelve repository-specific rules prove, at lint time, the structural
invariants the runtime verification layers (``repro.verify``,
``repro.persist``, ``repro.service``) rely on implicitly:

==  =======================  =================================================
id  name                     invariant
==  =======================  =================================================
R1  metered-randomness       core/baseline randomness flows through SeededRng
                             or declared hash families, never ``random.*`` /
                             ``np.random.*``
R2  snapshot-completeness    snapshot-allowlisted classes assign only
                             codec-representable state (cross-checked against
                             ``persist.codec``'s ``SNAPSHOT_CLASSES``)
R3  streaming-purity         one-pass algorithms never materialize the stream
                             (``edges()`` / ``edge_list()`` / ``to_csr()``)
R4  async-blocking           no blocking calls inside ``async def`` bodies in
                             ``repro.service``
R5  guarantee-registration   every ``AlgorithmEntry`` declares a
                             ``GuaranteeSpec`` and a round-trippable config
                             dataclass
R6  exit-code-convention     CLI error paths print to stderr and exit 2
R7  determinism-hygiene      no wall-clock or set-order dependence in result
                             paths; ``perf_counter`` only with an annotation
R8  exception-taxonomy       raises derive from the ``ReproError`` taxonomy
R9  ipc-discipline           worker IPC never pickles payloads: edge blocks
                             ride the shared-memory ring; pipe I/O only via
                             the ``_send_msg``/``_recv_msg`` choke points
R10 kernel-dispatch          numba imports only inside ``repro.kernels``;
    discipline               implementation modules reached only through
                             ``dispatch()``
R11 shard-container          the ``REPROED2`` magic and the container's
    discipline               private helpers stay inside
                             ``repro.streaming.sharded``
R12 instrumentation-         raw monotonic-clock reads live only in
    discipline               ``repro.obs``; everything else measures via
                             ``perf_now`` / spans / histograms
==  =======================  =================================================

Per-site suppression: ``# repro: noqa[R7] reason`` (or bare
``# repro: noqa`` for all rules).  Grandfathered findings live in a
committed baseline file (see :mod:`repro.staticcheck.baseline`); the
runner fails on new findings *and* on stale baseline entries, so the
baseline only ever shrinks.  Run it via ``repro lint``.
"""

from repro.staticcheck.baseline import (
    compare_with_baseline,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.findings import Finding
from repro.staticcheck.project import ParsedModule, Project
from repro.staticcheck.rules import ALL_RULES, Rule, rules_by_id
from repro.staticcheck.runner import LintReport, collect_files, run_lint

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ParsedModule",
    "Project",
    "Rule",
    "collect_files",
    "compare_with_baseline",
    "load_baseline",
    "rules_by_id",
    "run_lint",
    "save_baseline",
]
