"""The lint runner: files -> Project -> rules -> report.

``run_lint`` is the single entry point used by the CLI, the CI job, and
the self-scan test.  It parses every ``*.py`` under the given paths,
runs the (selected) rules, drops findings suppressed by inline
``# repro: noqa[...]`` annotations, and reconciles the rest against the
baseline file.  ``LintReport.exit_code`` encodes the contract: 0 when
the tree matches the baseline exactly, 2 when there are new findings
*or* stale baseline entries.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.exceptions import ReproError
from repro.staticcheck.baseline import compare_with_baseline, load_baseline
from repro.staticcheck.findings import Finding
from repro.staticcheck.project import ParsedModule, Project
from repro.staticcheck.rules import ALL_RULES, rules_by_id

__all__ = ["LintReport", "collect_files", "run_lint"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".benchmarks"}


@dataclass
class LintReport:
    """Everything one lint run observed, baseline already applied."""

    findings: list[Finding]  # all unsuppressed findings
    new: list[Finding]  # not covered by the baseline
    stale: list[str]  # baselined fingerprints with no finding
    suppressed: int  # dropped by inline noqa annotations
    files: int
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 2

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "rules": self.rules,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.to_dict() for f in self.new],
            "stale_baseline": list(self.stale),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def render(self) -> str:
        """Human-readable report: new findings, stale entries, summary."""
        lines = [f.render() for f in self.new]
        for fp in self.stale:
            lines.append(f"stale baseline entry (violation is gone): {fp}")
        lines.append(
            f"repro lint: {self.files} files, {len(self.rules)} rules, "
            f"{len(self.findings)} finding(s) "
            f"({len(self.new)} new, {self.suppressed} suppressed, "
            f"{len(self.stale)} stale baseline)"
        )
        lines.append("contracts hold" if self.ok else "contracts VIOLATED")
        return "\n".join(lines)


def collect_files(paths) -> list[Path]:
    """All ``*.py`` files under ``paths`` (files or directories), sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        else:
            raise ReproError(f"lint path {raw!r} does not exist")
    return sorted(files)


def run_lint(paths, *, rules=None, baseline_path=None, root=None,
             codec_allowlist=None) -> LintReport:
    """Lint ``paths`` and reconcile against the baseline.

    ``rules`` is an optional list of rule ids (``["R1", "R7"]``);
    ``baseline_path=None`` means an empty baseline (every finding is
    new).  ``codec_allowlist`` overrides the ``SNAPSHOT_CLASSES`` set
    normally parsed out of the scanned tree (fixture tests).
    """
    selected = rules_by_id(rules)
    files = collect_files(paths)
    root = Path(root) if root is not None else Path.cwd()
    modules = []
    for path in files:
        try:
            modules.append(ParsedModule(path, root=root))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            raise ReproError(f"cannot parse {path}: {error}") from None
    project = Project(modules, codec_allowlist=codec_allowlist)

    findings: list[Finding] = []
    suppressed = 0
    for mod in modules:
        for rule in selected:
            for finding in rule.check(mod, project):
                if mod.suppressed(finding.line, finding.rule):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort()

    baseline = load_baseline(baseline_path) if baseline_path else None
    if baseline:
        new, stale = compare_with_baseline(findings, baseline)
    else:
        new, stale = list(findings), []
    return LintReport(
        findings=findings,
        new=new,
        stale=stale,
        suppressed=suppressed,
        files=len(files),
        rules=[rule.id for rule in selected],
    )
