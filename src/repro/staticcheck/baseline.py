"""The grandfathered-findings baseline file.

A baseline maps :meth:`Finding.fingerprint` strings to occurrence
counts.  ``repro lint`` fails on *new* findings (observed more often
than baselined) and on *stale* entries (baselined more often than
observed), so the committed file can only ever track the truth — it
cannot quietly accumulate.  The committed baseline is expected to be
empty; every deliberate exception lives as an inline
``# repro: noqa[..]`` annotation instead, visible at the site.
"""

import json
from collections import Counter
from pathlib import Path

from repro.common.exceptions import ReproError

__all__ = ["compare_with_baseline", "load_baseline", "save_baseline"]

_VERSION = 1


def load_baseline(path) -> Counter:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Counter()
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise ReproError(f"unreadable baseline {path}: {error}") from None
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ReproError(
            f"baseline {path} is not a version-{_VERSION} lint baseline"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in findings.items()
    ):
        raise ReproError(f"baseline {path} has a malformed findings table")
    return Counter(findings)


def save_baseline(path, findings) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    counts = Counter(f.fingerprint() for f in findings)
    payload = {
        "version": _VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def compare_with_baseline(findings, baseline: Counter):
    """Split findings into (new, stale-fingerprints) against a baseline.

    A fingerprint observed ``k`` times against a baselined count ``b``
    contributes ``max(0, k - b)`` new findings and is stale when
    ``b > k`` (the baseline promises more violations than exist).
    """
    observed = Counter(f.fingerprint() for f in findings)
    remaining = dict(baseline)
    new = []
    for finding in sorted(findings):
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
        else:
            new.append(finding)
    stale = sorted(
        fp for fp, count in baseline.items() if count > observed.get(fp, 0)
    )
    return new, stale
