"""The twelve contract rules.

Each rule proves one structural invariant the runtime layers rely on
implicitly (the guarantee oracles of :mod:`repro.verify`, the snapshot
codec of :mod:`repro.persist`, the asyncio service).  Rules are pure
functions of the parsed :class:`~repro.staticcheck.project.Project`:
``check(mod, project)`` yields :class:`Finding`s for one module.

Suppression (``# repro: noqa[R7] reason``) and the baseline are applied
by the runner, not here — rules always report what they see.
"""

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.project import ParsedModule, Project, dotted_to_key

__all__ = ["ALL_RULES", "Rule", "rules_by_id"]

#: The algorithm base classes (``repro.streaming.model``) whose subclasses
#: carry the streaming / snapshot contracts.
_ONEPASS_BASES = ("repro.streaming.model.OnePassAlgorithm",)
_SNAPSHOT_BASES = (
    "repro.streaming.model.SnapshotableAlgorithm",
    "repro.streaming.model.MultipassStreamingAlgorithm",
    "repro.streaming.model.OnePassAlgorithm",
)


def _in_package(mod: ParsedModule, *prefixes: str) -> bool:
    return any(mod.module == p or mod.module.startswith(p + ".")
               for p in prefixes)


def _finding(mod: ParsedModule, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=mod.relpath,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
        text=mod.line_text(node.lineno),
    )


def _scoped_walk(nodes, *, skip_defs: bool = False, skip_classes: bool = False):
    """Walk statements without descending into nested function/class bodies."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if skip_defs and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if skip_classes and isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement ``check``."""

    id = "R0"
    title = ""

    def check(self, mod: ParsedModule, project: Project):
        raise NotImplementedError
        yield  # pragma: no cover


# ----------------------------------------------------------------------
# R1 — metered randomness
# ----------------------------------------------------------------------
class MeteredRandomnessRule(Rule):
    """Core/baseline algorithms draw randomness only through metered sources.

    Every random bit an algorithm consumes is charged to its
    :class:`SpaceMeter` by ``SeededRng`` and the declared hash families.
    A bare ``random.*`` / ``np.random.*`` call would draw unmetered bits,
    silently breaking the Theorem 3/4 randomness accounting the guarantee
    oracles certify.
    """

    id = "R1"
    title = "metered-randomness"
    _BANNED = ("random", "numpy.random")

    def _is_banned(self, dotted: str | None) -> bool:
        return dotted is not None and any(
            dotted == b or dotted.startswith(b + ".") for b in self._BANNED
        )

    def check(self, mod, project):
        if not _in_package(mod, "repro.core", "repro.baselines"):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_banned(alias.name):
                        yield _finding(
                            mod, node, self.id,
                            f"import of unmetered randomness module "
                            f"{alias.name!r}; draw through SeededRng or a "
                            f"declared hash family",
                        )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if self._is_banned(base):
                    yield _finding(
                        mod, node, self.id,
                        f"import from unmetered randomness module {base!r}; "
                        f"draw through SeededRng or a declared hash family",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = mod.resolve(node)
                if not self._is_banned(dotted):
                    continue
                # flag only the shortest banned prefix, once per chain
                if self._is_banned(mod.resolve(node.value)):
                    continue
                yield _finding(
                    mod, node, self.id,
                    f"unmetered randomness {dotted}; draw through SeededRng "
                    f"or a declared hash family",
                )


# ----------------------------------------------------------------------
# R2 — snapshot completeness
# ----------------------------------------------------------------------
class SnapshotCompletenessRule(Rule):
    """Snapshot-allowlisted classes keep only codec-representable state.

    For every class in ``persist.codec``'s ``SNAPSHOT_CLASSES`` (and its
    statically visible ancestors), each ``self.x = ...`` must either be
    codec-representable or listed in ``_snapshot_skip_`` / rebuilt by
    ``_snapshot_init_``.  Statically provable violations: lambdas,
    generator expressions, open file handles, locks/sockets, and
    constructors of repository classes that are not themselves
    allowlisted.
    """

    id = "R2"
    title = "snapshot-completeness"
    _BANNED_PREFIXES = ("threading.", "socket.", "subprocess.", "io.")
    _BANNED_CALLS = ("open", "iter", "asyncio.Lock", "asyncio.Event",
                     "asyncio.Queue", "tempfile.TemporaryDirectory")

    def _scoped_classes(self, mod, project):
        """Allowlisted classes in this module, plus ancestors of any
        allowlisted class that happen to be defined here."""
        allow = project.codec_allowlist
        ancestor_dotted: set = set()
        for info in project.classes_by_dotted.values():
            if info.key in allow:
                ancestor_dotted.update(project.ancestry(info))
        for info in project.classes_by_dotted.values():
            if info.mod is not mod:
                continue
            if info.key in allow or info.dotted in ancestor_dotted \
                    or info.name in {d.rpartition(".")[2] for d in ancestor_dotted}:
                yield info

    def _violation(self, mod, project, value) -> str | None:
        for node in ast.walk(value):
            if isinstance(node, ast.Lambda):
                return "a lambda is not codec-representable"
            if isinstance(node, ast.GeneratorExp):
                return "a generator expression is not codec-representable"
            if isinstance(node, ast.Call):
                dotted = mod.resolve(node.func)
                if dotted is None:
                    continue
                if dotted in self._BANNED_CALLS or dotted.startswith(
                    self._BANNED_PREFIXES
                ):
                    return f"{dotted}(...) is not codec-representable"
                info = project.find_class(dotted)
                if info is not None:
                    if info.key not in project.codec_allowlist:
                        return (
                            f"{info.key} is not in persist.codec's "
                            f"SNAPSHOT_CLASSES allowlist"
                        )
                elif (dotted.startswith("repro.")
                        and dotted.rpartition(".")[2][:1].isupper()
                        and dotted_to_key(dotted) not in project.codec_allowlist):
                    return (
                            f"{dotted_to_key(dotted)} is not in persist.codec's "
                            f"SNAPSHOT_CLASSES allowlist"
                        )
        return None

    def check(self, mod, project):
        for info in self._scoped_classes(mod, project):
            exempt = project.snapshot_skip(info)
            # nested classes get their own ClassInfo pass
            for node in _scoped_walk(info.node.body, skip_classes=True):
                targets = ()
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets, value = [node.target], node.value
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if target.attr in exempt or value is None:
                        continue
                    why = self._violation(mod, project, value)
                    if why is not None:
                        yield _finding(
                            mod, node, self.id,
                            f"self.{target.attr} in snapshotable class "
                            f"{info.name}: {why}; make it representable or "
                            f"list it in _snapshot_skip_",
                        )


# ----------------------------------------------------------------------
# R3 — streaming purity
# ----------------------------------------------------------------------
class StreamingPurityRule(Rule):
    """One-pass algorithms never materialize the stream.

    Classes subclassing ``OnePassAlgorithm`` model the paper's
    adversarial single-pass setting: state is sublinear in the stream, so
    calling ``Graph.edges()`` / ``edge_list()`` / ``to_csr()`` or
    constructing a ``Graph``/``CSRGraph`` inside one is a contract breach
    even when tests still pass on small inputs.
    """

    id = "R3"
    title = "streaming-purity"
    _BANNED_METHODS = frozenset({"edges", "edge_list", "to_csr"})
    _BANNED_CLASSES = frozenset({
        "repro.graph.graph.Graph",
        "repro.graph.csr.CSRGraph",
    })

    def check(self, mod, project):
        for info in project.classes_by_dotted.values():
            if info.mod is not mod:
                continue
            if not project.derives_from(info, _ONEPASS_BASES):
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._BANNED_METHODS):
                    yield _finding(
                        mod, node, self.id,
                        f".{node.func.attr}() materializes the stream inside "
                        f"one-pass algorithm {info.name}",
                    )
                    continue
                dotted = mod.resolve(node.func)
                if dotted is None:
                    continue
                resolved = project.find_class(dotted)
                dotted_full = resolved.dotted if resolved is not None else dotted
                if dotted_full in self._BANNED_CLASSES:
                    yield _finding(
                        mod, node, self.id,
                        f"{dotted_full} constructed inside one-pass "
                        f"algorithm {info.name}; one-pass state must stay "
                        f"sublinear in the stream",
                    )


# ----------------------------------------------------------------------
# R4 — async bodies never block
# ----------------------------------------------------------------------
class AsyncBlockingRule(Rule):
    """``async def`` bodies in the service never make blocking calls.

    One stalled coroutine stalls every session on the loop.  Blocking
    work belongs in ``asyncio.to_thread`` (the restore path already does
    this) or in a sync helper documented as loop-exempt.
    """

    id = "R4"
    title = "async-blocking"
    _BANNED_EXACT = frozenset({
        "time.sleep", "open", "os.system", "os.popen", "os.unlink",
        "os.remove", "os.rename", "os.replace", "os.makedirs", "os.rmdir",
        "os.listdir", "os.stat",
    })
    _BANNED_PREFIXES = ("subprocess.", "shutil.", "os.path.")
    _BANNED_METHODS = frozenset({
        "read_text", "write_text", "read_bytes", "write_bytes",
        # blocking pipe I/O (the pool dispatcher's reader thread and
        # asyncio.to_thread are the only places these may run)
        "recv", "recv_bytes", "send", "send_bytes",
    })

    def check(self, mod, project):
        if not _in_package(mod, "repro.service"):
            return
        for func in ast.walk(mod.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _scoped_walk(func.body, skip_defs=True):
                if not isinstance(node, ast.Call):
                    continue
                dotted = mod.resolve(node.func)
                blocked = dotted is not None and (
                    dotted in self._BANNED_EXACT
                    or dotted.startswith(self._BANNED_PREFIXES)
                )
                if not blocked and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in self._BANNED_METHODS:
                    blocked, dotted = True, f"*.{node.func.attr}"
                if blocked:
                    yield _finding(
                        mod, node, self.id,
                        f"blocking call {dotted}(...) inside async def "
                        f"{func.name}; wrap it in asyncio.to_thread or move "
                        f"it to a sync helper",
                    )


# ----------------------------------------------------------------------
# R5 — guarantee registration
# ----------------------------------------------------------------------
class GuaranteeRegistrationRule(Rule):
    """Every ``AlgorithmEntry`` declares its guarantee and a real config.

    The ``repro verify`` sweep only certifies entries that declare a
    ``GuaranteeSpec``; an entry registered without one silently opts out
    of the paper-bound oracles.  The config class must be a dataclass
    with the ``from_dict``/``to_dict`` round-trip the engine, service,
    and checkpoint formats all rely on.
    """

    id = "R5"
    title = "guarantee-registration"

    def _config_ok(self, mod, project, value) -> bool:
        dotted = mod.resolve(value)
        if dotted is None:
            return False
        info = project.find_class(dotted)
        if info is None:
            # imported from an unscanned module: accept the engine's own
            # config package, reject everything else.
            return dotted.startswith("repro.engine.config.")
        chain = [info] + [
            p for p in (project.find_class(b) for b in project.ancestry(info))
            if p is not None
        ]
        is_dataclass = any(
            dec in ("dataclasses.dataclass", "dataclass")
            for link in chain for dec in link.decorators
        )
        methods = {
            stmt.name for link in chain for stmt in link.node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        return is_dataclass and {"from_dict", "to_dict"} <= methods

    def check(self, mod, project):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = mod.resolve(node.func)
            if dotted is None or dotted.rpartition(".")[2] != "AlgorithmEntry":
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            guarantee = kwargs.get("guarantee")
            if guarantee is None or (isinstance(guarantee, ast.Constant)
                                     and guarantee.value is None):
                yield _finding(
                    mod, node, self.id,
                    "AlgorithmEntry without a GuaranteeSpec: the entry opts "
                    "out of the verify sweep; declare guarantee=...",
                )
            config_cls = kwargs.get("config_cls")
            if config_cls is None or not self._config_ok(mod, project, config_cls):
                yield _finding(
                    mod, node, self.id,
                    "AlgorithmEntry.config_cls must be a dataclass with the "
                    "from_dict/to_dict round-trip (subclass AlgorithmConfig)",
                )


# ----------------------------------------------------------------------
# R6 — CLI exit-code convention
# ----------------------------------------------------------------------
class ExitCodeRule(Rule):
    """CLI error paths follow the exit-2 convention.

    Bad input exits with status 2 and a one-line message on stderr —
    never a traceback, never a made-up status.  Checked in ``cli``
    modules: ``sys.exit``/``SystemExit`` use only 0 or 2 with literal
    statuses, and every ``except <ReproError-family>`` handler both
    prints to ``sys.stderr`` and returns/exits 2.
    """

    id = "R6"
    title = "exit-code-convention"

    @staticmethod
    def _is_cli(mod: ParsedModule) -> bool:
        return mod.module.rpartition(".")[2] == "cli"

    @staticmethod
    def _exit_status(mod, node) -> int | None:
        """Literal status of a ``sys.exit(...)`` / ``raise SystemExit(...)``."""
        if isinstance(node, ast.Call):
            dotted = mod.resolve(node.func)
            if dotted in ("sys.exit", "SystemExit") and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    return arg.value
        return None

    def _handler_findings(self, mod, project, handler):
        caught = []
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type] if handler.type is not None else []
        for t in types:
            dotted = mod.resolve(t)
            if dotted is not None and project.is_taxonomy_exception(dotted):
                caught.append(dotted)
        if not caught:
            return
        returns_two = False
        prints_stderr = False
        for node in _scoped_walk(handler.body, skip_defs=True):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Constant) \
                    and node.value.value == 2:
                returns_two = True
            if self._exit_status(mod, node) == 2:
                returns_two = True
            if isinstance(node, ast.Call) \
                    and mod.resolve(node.func) == "print":
                for kw in node.keywords:
                    if kw.arg == "file" \
                            and mod.resolve(kw.value) == "sys.stderr":
                        prints_stderr = True
            if isinstance(node, ast.Raise):
                returns_two = True  # re-raised for an outer exit-2 handler
                prints_stderr = True
        name = caught[0].rpartition(".")[2]
        if not returns_two:
            yield _finding(
                mod, handler, self.id,
                f"except {name} handler must exit/return status 2 "
                f"(the CLI error convention)",
            )
        if not prints_stderr:
            yield _finding(
                mod, handler, self.id,
                f"except {name} handler must print a one-line message to "
                f"sys.stderr",
            )

    def check(self, mod, project):
        if not self._is_cli(mod):
            return
        for node in ast.walk(mod.tree):
            status = self._exit_status(mod, node)
            if status is not None and status not in (0, 2):
                yield _finding(
                    mod, node, self.id,
                    f"exit status {status}: the CLI convention is 0 "
                    f"(success) or 2 (usage/contract error)",
                )
            if isinstance(node, ast.ExceptHandler):
                yield from self._handler_findings(mod, project, node)


# ----------------------------------------------------------------------
# R7 — determinism hygiene
# ----------------------------------------------------------------------
class DeterminismRule(Rule):
    """No wall-clock reads or hash-order iteration in result paths.

    Results must be a function of (spec, stream, seed) alone.
    ``time.perf_counter`` is tolerated *only* for the timing extras and
    must carry an explicit ``# repro: noqa[R7]`` annotation at each site,
    so every exception is visible in the diff rather than buried in a
    baseline.
    """

    id = "R7"
    title = "determinism-hygiene"
    _WALL_CLOCK = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.ctime", "time.localtime", "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })
    _PERF = frozenset({"time.perf_counter", "time.perf_counter_ns"})
    _ORDER_SCOPES = ("repro.core", "repro.baselines", "repro.engine",
                     "repro.hashing", "repro.streaming")

    def check(self, mod, project):
        order_scoped = _in_package(mod, *self._ORDER_SCOPES)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                dotted = mod.resolve(node.func)
                if dotted in self._WALL_CLOCK:
                    yield _finding(
                        mod, node, self.id,
                        f"wall-clock read {dotted}(); results must be a "
                        f"function of (spec, stream, seed) only",
                    )
                elif dotted in self._PERF:
                    yield _finding(
                        mod, node, self.id,
                        f"{dotted}() is allowed only for timing extras; "
                        f"annotate the site with '# repro: noqa[R7]'",
                    )
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if not order_scoped:
                    continue
                is_set = isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call)
                    and mod.resolve(it.func) in ("set", "frozenset")
                )
                if is_set:
                    yield _finding(
                        mod, it, self.id,
                        "iteration directly over a set: the order is "
                        "hash-dependent; sort it first",
                    )


# ----------------------------------------------------------------------
# R8 — exception taxonomy
# ----------------------------------------------------------------------
class ExceptionTaxonomyRule(Rule):
    """Raised exceptions derive from the ``ReproError`` taxonomy.

    Callers catch everything from this package with one ``except
    ReproError`` clause (the CLI's exit-2 paths, the service dispatcher,
    the grid runner's error rows all rely on it).  A bare ``ValueError``
    escapes all of them as a traceback.  Dual-inheritance classes
    (``ParameterError(ReproError, ValueError)``) keep the standard-idiom
    contract for external callers.
    """

    id = "R8"
    title = "exception-taxonomy"
    _BANNED_BUILTINS = frozenset({
        "ValueError", "RuntimeError", "TypeError", "KeyError", "IndexError",
        "Exception", "BaseException", "OSError", "IOError", "LookupError",
        "ArithmeticError", "ZeroDivisionError", "AttributeError",
    })
    #: Functions whose protocol *requires* a builtin exception.
    _PROTOCOL_FUNCS = frozenset({"__getattr__", "__getattribute__"})

    def _protocol_raises(self, tree) -> set:
        exempt: set = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in self._PROTOCOL_FUNCS:
                exempt.update(
                    n for n in ast.walk(node) if isinstance(n, ast.Raise)
                )
        return exempt

    def check(self, mod, project):
        if not _in_package(mod, "repro"):
            return
        protocol = self._protocol_raises(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if node in protocol:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            dotted = mod.resolve(exc)
            if dotted is None:
                continue
            name = dotted.rpartition(".")[2]
            if project.is_taxonomy_exception(dotted):
                continue
            if dotted in self._BANNED_BUILTINS or (
                "." not in dotted and name in self._BANNED_BUILTINS
            ):
                yield _finding(
                    mod, node, self.id,
                    f"raise {name}: raised exceptions must derive from the "
                    f"ReproError taxonomy (repro.common.exceptions); use a "
                    f"dual-inheritance subclass if callers rely on {name}",
                )


# ----------------------------------------------------------------------
# R9 — worker IPC discipline
# ----------------------------------------------------------------------
class WorkerIpcRule(Rule):
    """Worker IPC moves edge payloads through shared memory, never pickle.

    The execution plane's zero-copy contract (:mod:`repro.service.pool`):
    edge blocks travel through the per-worker shared-memory ring; the
    control pipe carries only small plain-data dicts, funnelled through
    the ``_send_msg`` / ``_recv_msg`` choke points (which runtime-assert
    that no ndarray sneaks into a control message).  In scope
    (``repro.service`` and ``repro.engine.grid``) this rule bans explicit
    ``pickle`` use entirely and confines raw connection I/O
    (``.send/.recv/.send_bytes/.recv_bytes``) to those two helpers, so a
    stray ``conn.send(edges)`` cannot silently reintroduce per-block
    pickling.
    """

    id = "R9"
    title = "ipc-discipline"
    _SCOPES = ("repro.service", "repro.engine.grid")
    _PIPE_METHODS = frozenset({"send", "recv", "send_bytes", "recv_bytes"})
    _CHOKE_POINTS = frozenset({"_send_msg", "_recv_msg"})

    def _choke_point_nodes(self, tree) -> set:
        inside: set = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in self._CHOKE_POINTS:
                inside.update(ast.walk(node))
        return inside

    def check(self, mod, project):
        if not _in_package(mod, *self._SCOPES):
            return
        exempt = self._choke_point_nodes(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "pickle" \
                            or alias.name.startswith("pickle."):
                        yield _finding(
                            mod, node, self.id,
                            "import of pickle in worker-IPC scope; edge "
                            "payloads cross processes via the shared-memory "
                            "ring, control messages via _send_msg/_recv_msg",
                        )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if base == "pickle" or base.startswith("pickle."):
                    yield _finding(
                        mod, node, self.id,
                        "import from pickle in worker-IPC scope; edge "
                        "payloads cross processes via the shared-memory "
                        "ring, control messages via _send_msg/_recv_msg",
                    )
            elif isinstance(node, ast.Call):
                dotted = mod.resolve(node.func)
                if dotted is not None and (
                    dotted == "pickle" or dotted.startswith("pickle.")
                ):
                    yield _finding(
                        mod, node, self.id,
                        f"{dotted}(...) in worker-IPC scope; never pickle "
                        f"payloads by hand — use the shared-memory ring",
                    )
                    continue
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._PIPE_METHODS
                        and node not in exempt):
                    yield _finding(
                        mod, node, self.id,
                        f".{node.func.attr}(...) outside the "
                        f"_send_msg/_recv_msg choke points; raw connection "
                        f"I/O bypasses the no-ndarray assertion",
                    )


# ----------------------------------------------------------------------
# R10 — kernel-dispatch discipline
# ----------------------------------------------------------------------
class KernelDisciplineRule(Rule):
    """Numba stays behind the dispatch layer; call sites never pick a tier.

    The bit-identity contract of :mod:`repro.kernels` holds because every
    hot-loop call goes through ``dispatch(name, ...)``, which resolves the
    tier (numpy reference vs optional compiled twin) from one place.  Two
    structural guarantees keep that true: (a) ``numba`` is importable only
    inside ``repro.kernels`` — anywhere else it would create a second,
    unswitchable compiled path the numpy oracle never differences; and
    (b) the implementation modules (``numpy_impl`` / ``compiled_impl``)
    are not imported from outside ``repro.kernels`` — reaching a twin
    directly would bypass tier resolution, hit counting, and the
    ``measure_kernels`` observability hook.
    """

    id = "R10"
    title = "kernel-dispatch discipline"
    _IMPL_MODULES = (
        "repro.kernels.numpy_impl",
        "repro.kernels.compiled_impl",
    )

    def _numba_message(self) -> str:
        return (
            "import of numba outside repro.kernels; compiled twins live "
            "only in repro.kernels.compiled_impl behind dispatch()"
        )

    def _impl_message(self, name: str) -> str:
        return (
            f"import of kernel implementation module {name!r} outside "
            f"repro.kernels; call sites go through "
            f"repro.kernels.dispatch() so tier selection, hit counting, "
            f"and timing stay centralized"
        )

    def check(self, mod, project):
        if not _in_package(mod, "repro"):
            return
        if _in_package(mod, "repro.kernels"):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numba" \
                            or alias.name.startswith("numba."):
                        yield _finding(
                            mod, node, self.id, self._numba_message()
                        )
                    elif alias.name in self._IMPL_MODULES:
                        yield _finding(
                            mod, node, self.id,
                            self._impl_message(alias.name),
                        )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if base == "numba" or base.startswith("numba."):
                    yield _finding(mod, node, self.id, self._numba_message())
                elif base in self._IMPL_MODULES:
                    yield _finding(
                        mod, node, self.id, self._impl_message(base)
                    )
                elif base == "repro.kernels":
                    for alias in node.names:
                        if alias.name in ("numpy_impl", "compiled_impl"):
                            yield _finding(
                                mod, node, self.id,
                                self._impl_message(
                                    f"repro.kernels.{alias.name}"
                                ),
                            )


# ----------------------------------------------------------------------
# R11 — shard-container discipline
# ----------------------------------------------------------------------
class ShardContainerRule(Rule):
    """Shard I/O goes only through :mod:`repro.streaming.sharded`.

    The ``REPROED2`` on-disk contract — manifest schema, shard naming,
    payload checksums, and the temp-file + atomic-rename durability
    discipline — lives in exactly one module.  A second module writing
    the magic by hand or poking the container's private helpers would
    fork the format: its files would load today and rot the first time
    the manifest schema moves.  Outside the container module (a) the
    ``REPROED2`` magic literal must not appear, and (b) the container's
    private (underscore) helpers must not be imported — consumers use
    ``ShardedFileSource`` / ``write_sharded_edge_file`` /
    ``read_shard_manifest`` / ``verify_shard_checksums``.
    """

    id = "R11"
    title = "shard-container discipline"
    _MODULE = "repro.streaming.sharded"

    @staticmethod
    def _docstrings(tree) -> set:
        """The Constant nodes serving as docstrings (prose, not format)."""
        nodes = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                body = node.body
                if body and isinstance(body[0], ast.Expr) \
                        and isinstance(body[0].value, ast.Constant) \
                        and isinstance(body[0].value.value, str):
                    nodes.add(body[0].value)
        return nodes

    def check(self, mod, project):
        if not _in_package(mod, "repro"):
            return
        # The container module owns the literal; the checker itself names
        # it in rule messages (this class) — neither forks the format.
        if mod.module == self._MODULE \
                or _in_package(mod, "repro.staticcheck"):
            return
        docstrings = self._docstrings(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Constant) and node not in docstrings and (
                (isinstance(node.value, str) and "REPROED2" in node.value)
                or (isinstance(node.value, bytes)
                    and b"REPROED2" in node.value)
            ):
                yield _finding(
                    mod, node, self.id,
                    "REPROED2 magic literal outside "
                    f"{self._MODULE}; the container format is written and "
                    "parsed in exactly one module",
                )
            elif isinstance(node, ast.ImportFrom) \
                    and (node.module or "") == self._MODULE:
                for alias in node.names:
                    if alias.name.startswith("_"):
                        yield _finding(
                            mod, node, self.id,
                            f"import of private container helper "
                            f"{alias.name!r}; shard I/O goes through the "
                            f"public {self._MODULE} API",
                        )


# ----------------------------------------------------------------------
# R12 — instrumentation discipline
# ----------------------------------------------------------------------
class InstrumentationRule(Rule):
    """Raw timing reads live only inside :mod:`repro.obs`.

    Every measurement — pass walls, feed latencies, span durations,
    bench harnesses — flows through the obs plane (``perf_now`` /
    ``span`` / histogram ``observe``), so there is exactly one place
    where a clock is read and exactly one annotation budget (R7's
    per-site ``noqa`` inside ``repro.obs.clock``).  A module calling
    ``time.perf_counter`` directly bypasses the metrics/trace plane:
    its numbers never show up in ``repro metrics`` and its noqa
    annotations creep back into the diff.
    """

    id = "R12"
    title = "instrumentation-discipline"
    _OBS = "repro.obs"
    _TIMING = frozenset({
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    })

    def check(self, mod, project):
        if not _in_package(mod, "repro") or _in_package(mod, self._OBS):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                dotted = mod.resolve(node.func)
                if dotted in self._TIMING:
                    yield _finding(
                        mod, node, self.id,
                        f"raw timing read {dotted}(); measurement goes "
                        f"through repro.obs (perf_now, span, or a "
                        f"histogram) so it reaches the metrics/trace plane",
                    )


ALL_RULES: tuple[Rule, ...] = (
    MeteredRandomnessRule(),
    SnapshotCompletenessRule(),
    StreamingPurityRule(),
    AsyncBlockingRule(),
    GuaranteeRegistrationRule(),
    ExitCodeRule(),
    DeterminismRule(),
    ExceptionTaxonomyRule(),
    WorkerIpcRule(),
    KernelDisciplineRule(),
    ShardContainerRule(),
    InstrumentationRule(),
)


def rules_by_id(ids=None) -> tuple[Rule, ...]:
    """Resolve ``["R1", "R7"]`` to rule instances (all rules when None)."""
    from repro.common.exceptions import ReproError

    if ids is None:
        return ALL_RULES
    table = {rule.id: rule for rule in ALL_RULES}
    picked = []
    for rid in ids:
        rid = rid.strip().upper()
        if rid not in table:
            raise ReproError(
                f"unknown rule {rid!r}; available: {sorted(table)}"
            )
        picked.append(table[rid])
    return tuple(picked)
