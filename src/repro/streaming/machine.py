"""The resumable pass-machine protocol driving every block-path run.

A block-native algorithm executes as an explicit state machine whose
*cross-pass* state lives entirely in object attributes (and is therefore
covered by ``state_dict()`` / ``load_state()``), while *intra-pass*
accumulators live in a throwaway :class:`PassConsumer`:

- ``blocks_start()`` — initialize the machine (phase + variables, stored
  on the algorithm, conventionally under ``self._mach``);
- ``blocks_consumer()`` — a **pure** inspection of the machine state:
  build and return the consumer for the pass the current phase needs, or
  ``None`` once the run is complete.  Purity is what makes checkpoints
  work: the driver may call it, discard the consumer, and call it again
  after a restore;
- ``blocks_deliver(result, stream)`` — fold a finished pass's result into
  the machine state and advance through compute-only phases until the
  next phase that needs a pass (or completion).  All space-gauge changes
  happen here (or in ``blocks_start``), never in ``blocks_consumer``;
- ``blocks_result()`` — the final coloring.

:func:`drive_blocks` is the plain, non-checkpointing driver used by
``color_stream`` on block sources; :class:`repro.persist.driver.
ResumableRun` is the checkpointing twin, snapshotting between
``blocks_deliver`` and the next pass.  Suspend/restore fidelity:

- a consumer with ``resumable = True`` (the one-pass algorithms: feeding
  mutates only snapshotted algorithm state) can be suspended at any block
  boundary and resumed by feeding the remaining items;
- a consumer with ``resumable = False`` (the multipass algorithms' pass
  accumulators) is rebuilt by replaying the in-flight pass from its
  beginning against the pass-boundary snapshot — deterministic, hence
  bit-identical (DESIGN.md, "Persistence & service").
"""

import numpy as np

from repro.common.exceptions import CheckpointError

__all__ = ["OnePassStreamConsumer", "PassConsumer", "drive_blocks"]


class PassConsumer:
    """Intra-pass accumulator: fed every item of one pass, then finished."""

    #: True when ``feed`` mutates only snapshotted algorithm state, so a
    #: suspended pass can resume from an item offset instead of replaying.
    resumable = False

    def feed(self, item) -> None:
        """Consume the next pass item (a ``(k, 2)`` block or a ListToken)."""
        raise NotImplementedError

    def finish(self, stream):
        """Close the pass and return its result (may charge deferred time
        to ``stream.pass_seconds[-1]``)."""
        return None


class OnePassStreamConsumer(PassConsumer):
    """The single streaming pass of a one-pass algorithm."""

    resumable = True

    def __init__(self, algo):
        self.algo = algo

    def feed(self, item) -> None:
        if isinstance(item, np.ndarray):
            self.algo.process_block(item)


def require_machine(algo) -> dict:
    """The algorithm's machine state dict (raise if not started)."""
    mach = getattr(algo, "_mach", None)
    if mach is None:
        raise CheckpointError(
            f"{type(algo).__name__}: pass machine not started "
            "(call blocks_start first)"
        )
    return mach


def drive_blocks(algo, stream) -> dict:
    """Run an algorithm's pass machine over a block source to completion."""
    algo.blocks_start()
    while True:
        consumer = algo.blocks_consumer()
        if consumer is None:
            break
        for item in stream.new_pass():
            consumer.feed(item)
        result = consumer.finish(stream)
        algo.blocks_deliver(result, stream)
    return algo.blocks_result()
