"""Sharded, indexed edge container: the ``REPROED2`` directory format.

A container is a directory holding a JSON manifest plus one or more
``REPROED1`` shard payloads:

    edges.shards/
        manifest.json       <- magic, n, m, shard row ranges, checksums
        shard-00000.ed1     <- ordinary REPROED1 edge file (global rows 0..)
        shard-00001.ed1
        ...

Each shard is independently a valid single-file edge file (header ``n``
equals the container's ``n``, header ``m`` equals the shard's row count),
so single-file tooling can open any shard in isolation.  The manifest pins
the global row order: shard k covers global rows ``[row_start,
row_start + rows)``, the ranges tile ``[0, m)`` in order, and the
concatenation of shard payloads IS the equivalent single-file payload,
byte for byte.

:class:`ShardedFileSource` streams a container through the block data
plane with bounded memory.  It reads shards with plain buffered I/O
(never ``mmap``, whose resident file-backed pages would defeat the
out-of-core RSS story) and yields *global-row-aligned* blocks: block k
covers rows ``[k * chunk_size, (k + 1) * chunk_size)``, assembled from at
most two shard reads when a chunk straddles a boundary.  The block
sequence is therefore identical to a
:class:`~repro.streaming.source.FileSource` over the equivalent single
file at the same chunk size — and so are resume offsets
(``resume_pass(offset)`` starts at global row ``offset * chunk_size``),
``repro.persist`` checkpoints, and results.

Durability discipline (mirroring ``REPROCK1`` checkpoints): every shard
and the manifest are written to a same-directory temp file and atomically
renamed into place, and the manifest is written *last* — a crashed writer
can never leave a directory that parses as a valid container.
"""

import hashlib
import json
import os

import numpy as np

from repro.common.exceptions import EdgeFileError, StreamProtocolError
import repro.obs as obs
from repro.streaming.source import (
    _HEADER,
    _MAGIC,
    DEFAULT_CHUNK_SIZE,
    StreamSource,
    iter_edge_blocks,
    read_edge_file_header,
)

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_MAGIC",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ShardedFileSource",
    "read_shard_manifest",
    "verify_shard_checksums",
    "write_sharded_edge_file",
]

MANIFEST_MAGIC = "REPROED2"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Default rows per shard: 4 Mi edges = 64 MiB of payload.
DEFAULT_SHARD_ROWS = 1 << 22

#: Start of the edge payload inside every shard (magic + ``<QQ`` header).
_PAYLOAD_OFFSET = len(_MAGIC) + _HEADER.size

#: Rows per writer-side block: bounds writer memory at ~4 MiB regardless
#: of the input's own chunking.
_WRITE_BLOCK_ROWS = 1 << 18


def _sha256_payload(path, chunk_bytes: int = 1 << 20) -> str:
    """Hex sha256 of a shard's edge payload (everything past the header)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        fh.seek(_PAYLOAD_OFFSET)
        while True:
            data = fh.read(chunk_bytes)
            if not data:
                break
            hasher.update(data)
    return hasher.hexdigest()


class _ShardWriter:
    """One shard payload: temp file, header patched at finish, atomic rename."""

    def __init__(self, dirpath: str, index: int, n: int, row_start: int):
        self.name = f"shard-{index:05d}.ed1"
        self.path = os.path.join(dirpath, self.name)
        self.row_start = row_start
        self.rows = 0
        self._n = n
        self._hasher = hashlib.sha256()
        self._tmp = os.path.join(dirpath, f".{self.name}.tmp.{os.getpid()}")
        self._fh = open(self._tmp, "wb")
        self._fh.write(_MAGIC)
        self._fh.write(_HEADER.pack(n, 0))  # row count patched at finish

    def append(self, block) -> None:
        data = np.ascontiguousarray(block, dtype="<i8").tobytes()
        self._fh.write(data)
        self._hasher.update(data)
        self.rows += len(block)

    def finish(self) -> dict:
        self._fh.seek(len(_MAGIC))
        self._fh.write(_HEADER.pack(self._n, self.rows))
        self._fh.close()
        os.replace(self._tmp, self.path)
        return {
            "name": self.name,
            "rows": self.rows,
            "row_start": self.row_start,
            "sha256": self._hasher.hexdigest(),
        }

    def abort(self) -> None:
        try:
            self._fh.close()
        finally:
            if os.path.exists(self._tmp):
                os.unlink(self._tmp)


def write_sharded_edge_file(
    path,
    n: int,
    edges,
    *,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    track_degrees: bool = True,
) -> dict:
    """Write edges as a ``REPROED2`` container; returns the manifest dict.

    ``edges`` may be an ``(m, 2)`` array, an iterable of ``(u, v)`` pairs,
    or an iterable of ``(k, 2)`` blocks (see
    :func:`~repro.streaming.source.iter_edge_blocks`) — memory stays
    bounded by the writer's own block size either way.  Every shard holds
    exactly ``shard_rows`` rows except the last.

    With ``track_degrees`` (the default) the writer folds degrees as it
    streams and records ``max_degree`` in the manifest, so readers never
    need a stats sweep over the payload; the cost is one O(n) int64 array
    while writing.  The target directory is created if missing and must
    not already hold a container.
    """
    if n < 0:
        raise StreamProtocolError(f"container needs n >= 0, got {n}")
    if shard_rows < 1:
        raise StreamProtocolError(f"shard_rows must be >= 1, got {shard_rows}")
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        raise EdgeFileError(
            f"{path}: refusing to overwrite an existing container "
            f"({MANIFEST_NAME} already present)"
        )
    deg = np.zeros(max(1, n), dtype=np.int64) if track_degrees else None
    shards: list[dict] = []
    writer = None
    written = 0
    try:
        for block in iter_edge_blocks(edges, _WRITE_BLOCK_ROWS):
            if len(block) and (block.min() < 0 or block.max() >= n):
                raise StreamProtocolError(f"edge endpoint out of range [0, {n})")
            if deg is not None and len(block):
                np.add.at(deg, block.ravel(), 1)
            start = 0
            while start < len(block):
                if writer is None:
                    writer = _ShardWriter(path, len(shards), n, written)
                take = min(len(block) - start, shard_rows - writer.rows)
                writer.append(block[start : start + take])
                start += take
                written += take
                if writer.rows >= shard_rows:
                    shards.append(writer.finish())
                    writer = None
        if writer is not None:
            shards.append(writer.finish())
            writer = None
    except BaseException:
        # Leave no partial container behind: the in-flight temp file and
        # any shards already renamed into place are both removed (the
        # manifest was never written, so nothing parses as a container).
        if writer is not None:
            writer.abort()
        for record in shards:
            try:
                os.unlink(os.path.join(path, record["name"]))
            except OSError:
                pass
        raise
    manifest = {
        "magic": MANIFEST_MAGIC,
        "version": MANIFEST_VERSION,
        "n": n,
        "m": written,
        "shard_rows": shard_rows,
        "shards": shards,
    }
    if deg is not None:
        manifest["max_degree"] = int(deg.max()) if n else 0
    tmp = f"{manifest_path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, manifest_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return manifest


def read_shard_manifest(path, *, check_payloads: bool = True) -> dict:
    """Load and validate a container manifest; returns the manifest dict.

    Checks the manifest shape (magic, version, field types), that shard
    row ranges tile ``[0, m)`` in order, and — unless ``check_payloads``
    is disabled — that every shard file exists with a header matching the
    manifest and an *exactly* right payload length (truncation and
    trailing garbage both refuse to load).  Checksums are not recomputed
    here; see :func:`verify_shard_checksums`.
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isdir(path) or not os.path.exists(manifest_path):
        raise EdgeFileError(
            f"{path}: not a sharded edge container (expected a directory "
            f"holding {MANIFEST_NAME})"
        )
    try:
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as error:
        raise EdgeFileError(
            f"{manifest_path}: unreadable manifest: {error}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("magic") != MANIFEST_MAGIC:
        raise EdgeFileError(
            f"{manifest_path}: not a {MANIFEST_MAGIC} manifest "
            f"(magic {manifest.get('magic') if isinstance(manifest, dict) else manifest!r})"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise EdgeFileError(
            f"{manifest_path}: unsupported container version "
            f"{manifest.get('version')!r} (this reader speaks "
            f"{MANIFEST_VERSION})"
        )
    try:
        n = int(manifest["n"])
        m = int(manifest["m"])
        records = [
            (str(s["name"]), int(s["rows"]), int(s["row_start"]))
            for s in manifest["shards"]
        ]
        for s in manifest["shards"]:
            str(s["sha256"])
    except (KeyError, TypeError, ValueError) as error:
        raise EdgeFileError(
            f"{manifest_path}: malformed manifest: {error!r}"
        ) from error
    if n < 0 or m < 0:
        raise EdgeFileError(f"{manifest_path}: negative n or m (n={n}, m={m})")
    row = 0
    for name, rows, row_start in records:
        if os.path.basename(name) != name or not name:
            raise EdgeFileError(
                f"{manifest_path}: shard name {name!r} escapes the container"
            )
        if rows < 1:
            raise EdgeFileError(
                f"{manifest_path}: shard {name} declares {rows} rows "
                "(every shard holds at least one)"
            )
        if row_start != row:
            raise EdgeFileError(
                f"{manifest_path}: shard {name} starts at row {row_start}, "
                f"expected {row} — shard ranges must tile [0, m) in order"
            )
        row += rows
    if row != m:
        raise EdgeFileError(
            f"{manifest_path}: shards cover {row} rows but the manifest "
            f"declares m={m}"
        )
    if check_payloads:
        for name, rows, _row_start in records:
            shard_path = os.path.join(path, name)
            shard_n, shard_m = read_edge_file_header(shard_path)
            if shard_n != n or shard_m != rows:
                raise EdgeFileError(
                    f"{shard_path}: header (n={shard_n}, m={shard_m}) "
                    f"disagrees with the manifest (n={n}, rows={rows})"
                )
            size = os.path.getsize(shard_path)
            expected = _PAYLOAD_OFFSET + 16 * rows
            if size != expected:
                raise EdgeFileError(
                    f"{shard_path}: {size} bytes on disk but the manifest "
                    f"declares exactly {expected}; refusing a truncated or "
                    "trailing-garbage shard"
                )
    return manifest


def verify_shard_checksums(path) -> dict:
    """Recompute every shard's payload sha256 against the manifest.

    Returns the manifest on success; raises :class:`EdgeFileError` naming
    every mismatched shard otherwise.  This is the deep (full-read) check
    behind ``repro shard verify``; :func:`read_shard_manifest` covers the
    cheap structural checks done on every open.
    """
    manifest = read_shard_manifest(path)
    path = os.fspath(path)
    mismatched = [
        record["name"]
        for record in manifest["shards"]
        if _sha256_payload(os.path.join(path, record["name"])) != record["sha256"]
    ]
    if mismatched:
        raise EdgeFileError(
            f"{path}: shard payload checksum mismatch: {', '.join(mismatched)}"
        )
    return manifest


class ShardedFileSource(StreamSource):
    """Bounded-memory block source over a ``REPROED2`` container.

    Blocks are global-row aligned (block k = rows ``[k * chunk_size,
    (k + 1) * chunk_size)``) and read with buffered I/O, so resident
    memory stays O(chunk_size) however large the container is, and the
    block sequence — hence every result, cursor, and checkpoint — is
    identical to a single-file :class:`~repro.streaming.source.FileSource`
    over the same edges at the same chunk size.

    ``max_degree()`` comes straight from the manifest when the writer
    recorded it; only manifests written with ``track_degrees=False`` fall
    back to the O(n)-array stats sweep.
    """

    def __init__(self, path, chunk_size: int = DEFAULT_CHUNK_SIZE):
        manifest = read_shard_manifest(path)
        super().__init__(int(manifest["n"]), chunk_size)
        self.path = os.fspath(path)
        self.manifest = manifest
        self.m = int(manifest["m"])
        self._edge_count = self.m
        if "max_degree" in manifest:
            self._max_degree = int(manifest["max_degree"])
        self._names = [str(s["name"]) for s in manifest["shards"]]
        # Shard k covers rows [_row_starts[k], _row_starts[k+1]).
        self._row_starts = [int(s["row_start"]) for s in manifest["shards"]]
        self._row_starts.append(self.m)
        self._closed = False

    @property
    def shard_count(self) -> int:
        return len(self._names)

    def _pass_items(self):
        yield from self._pass_items_from(0)

    def _pass_items_from(self, offset: int):
        # Same cursor contract as FileSource: blocks are uniform
        # chunk_size rows (except the last), so item offset k maps to
        # global row k * chunk_size and a resume seeks straight to it
        # without re-reading the skipped prefix.
        if self._closed:
            raise StreamProtocolError(f"{self.path}: source is closed")
        starts = self._row_starts
        row = offset * self.chunk_size
        if row >= self.m:
            return
        idx = 0
        while starts[idx + 1] <= row:
            idx += 1
        fh = None
        fh_idx = -1
        try:
            while row < self.m:
                want = min(self.chunk_size, self.m - row)
                parts = []
                while want:
                    while row >= starts[idx + 1]:
                        idx += 1
                    if fh_idx != idx:
                        if fh is not None:
                            fh.close()
                        fh = open(os.path.join(self.path, self._names[idx]), "rb")
                        fh_idx = idx
                        fh.seek(_PAYLOAD_OFFSET + 16 * (row - starts[idx]))
                        obs.counter(
                            "repro_shard_open_total",
                            "shard files opened by ShardedFileSource",
                        ).inc()
                        if row != starts[idx]:
                            obs.counter(
                                "repro_shard_seek_total",
                                "mid-shard seeks (resume/restart entry)",
                            ).inc()
                    take = min(want, starts[idx + 1] - row)
                    data = fh.read(16 * take)
                    if len(data) != 16 * take:
                        raise EdgeFileError(
                            f"{os.path.join(self.path, self._names[idx])}: "
                            f"shard shrank under the reader (wanted "
                            f"{16 * take} bytes at global row {row}, got "
                            f"{len(data)})"
                        )
                    parts.append(np.frombuffer(data, dtype="<i8"))
                    row += take
                    want -= take
                flat = parts[0] if len(parts) == 1 else np.concatenate(parts)
                block = flat.astype(np.int64, copy=False).reshape(-1, 2)
                block.flags.writeable = False
                yield block
        finally:
            if fh is not None:
                fh.close()

    def close(self) -> None:
        """Mark the source closed (subsequent passes raise)."""
        self._closed = True
