"""Abstract interfaces for the two streaming settings.

These are intentionally thin: concrete algorithms do the real work, and the
interfaces exist so the experiment harness, the adversarial game loop, and
the communication-protocol reduction can treat algorithms uniformly.
"""

import abc

from repro.common.space import SpaceMeter
from repro.streaming.stream import TokenStream


class MultipassStreamingAlgorithm(abc.ABC):
    """A (possibly multipass) algorithm over a fixed :class:`TokenStream`.

    Subclasses implement :meth:`run`, reading the stream only via
    ``stream.new_pass()`` and charging ``self.meter`` for state.
    """

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def run(self, stream: TokenStream) -> dict[int, int]:
        """Process the stream and return a total coloring ``vertex -> color``."""

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits


class OnePassAlgorithm(abc.ABC):
    """A single-pass algorithm playing the adversarial game of Section 2.

    The adversary (or a static driver) calls :meth:`process` for each edge
    insertion and may call :meth:`query` at any time; ``query`` must return
    a proper coloring of all edges processed so far.
    """

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def process(self, u: int, v: int) -> None:
        """Consume the next edge insertion ``{u, v}``."""

    @abc.abstractmethod
    def query(self) -> dict[int, int]:
        """Return a coloring of every vertex, proper for the edges so far."""

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (oracle + seeds)."""
        return self.meter.random_bits
