"""Abstract interfaces for the two streaming settings.

These are intentionally thin: concrete algorithms do the real work, and the
interfaces exist so the experiment harness, the adversarial game loop, and
the communication-protocol reduction can treat algorithms uniformly.

Both base classes implement the :class:`repro.engine.StreamingColorer`
protocol: :meth:`color_stream` consumes a :class:`TokenStream` and returns
a total coloring, and :attr:`palette_bound` exposes the declared palette
size (``None`` when the algorithm only guarantees an asymptotic shape).
The engine's :func:`repro.engine.run` entry point drives algorithms only
through that protocol.
"""

import abc

import numpy as np

from repro.common.space import SpaceMeter
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken


class MultipassStreamingAlgorithm(abc.ABC):
    """A (possibly multipass) algorithm over a fixed :class:`TokenStream`.

    Subclasses implement :meth:`run`, reading the stream only via
    ``stream.new_pass()`` and charging ``self.meter`` for state.

    :meth:`run` accepts either data-plane view: a token stream (one
    ``EdgeToken``/``ListToken`` per item) or a
    :class:`~repro.streaming.source.StreamSource` (numpy ``(k, 2)`` edge
    blocks, list tokens interleaved in place).  Every algorithm in the
    registry consumes blocks natively (:attr:`supports_blocks` is true) and
    produces bit-identical output on both views; the legacy token
    adaptation in :meth:`color_stream` remains only as the contract
    fallback for third-party subclasses that never vectorized.
    """

    #: True when ``run`` consumes StreamSource blocks natively (all
    #: registered algorithms).  False falls back to token adaptation.
    supports_blocks = False

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def run(self, stream: TokenStream) -> dict[int, int]:
        """Process the stream and return a total coloring ``vertex -> color``."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: :meth:`run`, adapting block sources if needed."""
        if isinstance(stream, StreamSource) and not self.supports_blocks:
            stream = stream.as_token_stream()
        return self.run(stream)

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (0 for deterministic algorithms)."""
        return self.meter.random_bits


class OnePassAlgorithm(abc.ABC):
    """A single-pass algorithm playing the adversarial game of Section 2.

    The adversary (or a static driver) calls :meth:`process` for each edge
    insertion and may call :meth:`query` at any time; ``query`` must return
    a proper coloring of all edges processed so far.

    :meth:`process_block` is the batched twin of :meth:`process`: a
    ``(k, 2)`` array of insertions, consumed in order.  The default
    implementation is the scalar loop, so the contract is always satisfied;
    subclasses with a vectorized implementation override it (and set
    :attr:`supports_blocks`) with bit-identical state evolution, which both
    the static driver and the batched adversarial game rely on.
    """

    #: True when :meth:`process_block` is vectorized (all registered
    #: algorithms); the default scalar loop leaves it False.
    supports_blocks = False

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def process(self, u: int, v: int) -> None:
        """Consume the next edge insertion ``{u, v}``."""

    def process_block(self, edges: np.ndarray) -> None:
        """Consume a ``(k, 2)`` block of edge insertions, in order.

        Default: the scalar :meth:`process` loop.  Overrides must evolve
        the exact same state (colorings, space gauges, randomness) as the
        equivalent sequence of :meth:`process` calls.
        """
        for u, v in np.asarray(edges).tolist():
            self.process(u, v)

    @abc.abstractmethod
    def query(self) -> dict[int, int]:
        """Return a coloring of every vertex, proper for the edges so far."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: feed every edge, then query once.

        This is the static-stream (oblivious) driver; the adaptive setting
        goes through :func:`repro.adversaries.run_adversarial_game` instead.
        Block sources are fed through :meth:`process_block` block by block
        — the same edge order as the token path, vectorized whenever the
        algorithm overrides it.
        """
        if isinstance(stream, StreamSource):
            for item in stream.new_pass():
                if isinstance(item, np.ndarray):
                    self.process_block(item)
            return self.query()
        for token in stream.new_pass():
            if isinstance(token, EdgeToken):
                self.process(token.u, token.v)
        return self.query()

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (oracle + seeds)."""
        return self.meter.random_bits
