"""Abstract interfaces for the two streaming settings.

These are intentionally thin: concrete algorithms do the real work, and the
interfaces exist so the experiment harness, the adversarial game loop, and
the communication-protocol reduction can treat algorithms uniformly.

Both base classes implement the :class:`repro.engine.StreamingColorer`
protocol: :meth:`color_stream` consumes a :class:`TokenStream` and returns
a total coloring, and :attr:`palette_bound` exposes the declared palette
size (``None`` when the algorithm only guarantees an asymptotic shape).
The engine's :func:`repro.engine.run` entry point drives algorithms only
through that protocol.
"""

import abc

import numpy as np

from repro.common.space import SpaceMeter
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken


class MultipassStreamingAlgorithm(abc.ABC):
    """A (possibly multipass) algorithm over a fixed :class:`TokenStream`.

    Subclasses implement :meth:`run`, reading the stream only via
    ``stream.new_pass()`` and charging ``self.meter`` for state.

    Algorithms with a vectorized pass loop set :attr:`supports_blocks` and
    accept a :class:`~repro.streaming.source.StreamSource` in :meth:`run`;
    for everyone else :meth:`color_stream` transparently adapts block
    sources back to token iteration (same order, same pass counts).
    """

    #: Set true by subclasses whose ``run`` consumes StreamSource blocks.
    supports_blocks = False

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def run(self, stream: TokenStream) -> dict[int, int]:
        """Process the stream and return a total coloring ``vertex -> color``."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: :meth:`run`, adapting block sources if needed."""
        if isinstance(stream, StreamSource) and not self.supports_blocks:
            stream = stream.as_token_stream()
        return self.run(stream)

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (0 for deterministic algorithms)."""
        return self.meter.random_bits


class OnePassAlgorithm(abc.ABC):
    """A single-pass algorithm playing the adversarial game of Section 2.

    The adversary (or a static driver) calls :meth:`process` for each edge
    insertion and may call :meth:`query` at any time; ``query`` must return
    a proper coloring of all edges processed so far.
    """

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def process(self, u: int, v: int) -> None:
        """Consume the next edge insertion ``{u, v}``."""

    @abc.abstractmethod
    def query(self) -> dict[int, int]:
        """Return a coloring of every vertex, proper for the edges so far."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: feed every edge token, then query once.

        This is the static-stream (oblivious) driver; the adaptive setting
        goes through :func:`repro.adversaries.run_adversarial_game` instead.
        Block sources are consumed block-by-block but processed in the
        exact same edge order as the token path.
        """
        if isinstance(stream, StreamSource):
            for item in stream.new_pass():
                if isinstance(item, np.ndarray):
                    for u, v in item.tolist():
                        self.process(u, v)
            return self.query()
        for token in stream.new_pass():
            if isinstance(token, EdgeToken):
                self.process(token.u, token.v)
        return self.query()

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (oracle + seeds)."""
        return self.meter.random_bits
