"""Abstract interfaces for the two streaming settings.

These are intentionally thin: concrete algorithms do the real work, and the
interfaces exist so the experiment harness, the adversarial game loop, and
the communication-protocol reduction can treat algorithms uniformly.

Both base classes implement the :class:`repro.engine.StreamingColorer`
protocol: :meth:`color_stream` consumes a :class:`TokenStream` and returns
a total coloring, and :attr:`palette_bound` exposes the declared palette
size (``None`` when the algorithm only guarantees an asymptotic shape).
The engine's :func:`repro.engine.run` entry point drives algorithms only
through that protocol.
"""

import abc

import numpy as np

from repro.common.exceptions import CheckpointError
from repro.common.space import SpaceMeter
from repro.streaming.machine import OnePassStreamConsumer, drive_blocks, require_machine
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken


class SnapshotableAlgorithm:
    """The ``Snapshotable`` protocol: full algorithm state as plain data.

    ``state_dict()`` captures *every* run-relevant attribute — RNG draw
    positions, sketch tables, slack counters, buffers, pass-machine
    phase, and :class:`SpaceMeter` peaks — through the typed codec of
    :mod:`repro.persist.codec`; ``load_state()`` restores it into a
    freshly constructed instance (same class, same constructor
    parameters) bit for bit.  Derived caches named in ``_snapshot_skip_``
    are excluded and rebuilt by ``_snapshot_init_``.
    """

    #: Attribute names excluded from snapshots (derived caches).
    _snapshot_skip_: tuple = ()

    #: True once the class's block path runs on the resumable pass
    #: machine, i.e. suspend/restore at block boundaries is supported.
    supports_checkpoint = False

    def _snapshot_init_(self) -> None:
        """Rebuild the ``_snapshot_skip_`` caches after a restore."""

    def state_dict(self) -> dict:
        """Serialize the full algorithm state (JSON tree + numpy payloads)."""
        from repro.persist.codec import snapshot_object

        return snapshot_object(self)

    def load_state(self, state: dict, arrays: dict | None = None) -> None:
        """Restore a :meth:`state_dict` payload into this instance."""
        from repro.persist.codec import restore_object

        restore_object(self, state, arrays)

    def blocks_result(self) -> dict[int, int]:
        """The completed pass machine's coloring."""
        return require_machine(self)["coloring"]


class MultipassStreamingAlgorithm(SnapshotableAlgorithm, abc.ABC):
    """A (possibly multipass) algorithm over a fixed :class:`TokenStream`.

    Subclasses implement :meth:`run`, reading the stream only via
    ``stream.new_pass()`` and charging ``self.meter`` for state.

    :meth:`run` accepts either data-plane view: a token stream (one
    ``EdgeToken``/``ListToken`` per item) or a
    :class:`~repro.streaming.source.StreamSource` (numpy ``(k, 2)`` edge
    blocks, list tokens interleaved in place).  Every algorithm in the
    registry consumes blocks natively (:attr:`supports_blocks` is true) and
    produces bit-identical output on both views; the legacy token
    adaptation in :meth:`color_stream` remains only as the contract
    fallback for third-party subclasses that never vectorized.
    """

    #: True when ``run`` consumes StreamSource blocks natively (all
    #: registered algorithms).  False falls back to token adaptation.
    supports_blocks = False

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def run(self, stream: TokenStream) -> dict[int, int]:
        """Process the stream and return a total coloring ``vertex -> color``."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: :meth:`run`, adapting block sources if needed."""
        if isinstance(stream, StreamSource) and not self.supports_blocks:
            stream = stream.as_token_stream()
        return self.run(stream)

    # -- pass-machine protocol (repro.streaming.machine) ----------------
    # Multipass algorithms implement these to run their block path as a
    # resumable state machine; the default raises so that only audited
    # classes claim checkpoint support.
    def blocks_start(self) -> None:
        raise CheckpointError(
            f"{type(self).__name__} does not implement the pass machine"
        )

    def blocks_consumer(self):
        raise CheckpointError(
            f"{type(self).__name__} does not implement the pass machine"
        )

    def blocks_deliver(self, result, stream) -> None:
        raise CheckpointError(
            f"{type(self).__name__} does not implement the pass machine"
        )

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (0 for deterministic algorithms)."""
        return self.meter.random_bits


class OnePassAlgorithm(SnapshotableAlgorithm, abc.ABC):
    """A single-pass algorithm playing the adversarial game of Section 2.

    The adversary (or a static driver) calls :meth:`process` for each edge
    insertion and may call :meth:`query` at any time; ``query`` must return
    a proper coloring of all edges processed so far.

    :meth:`process_block` is the batched twin of :meth:`process`: a
    ``(k, 2)`` array of insertions, consumed in order.  The default
    implementation is the scalar loop, so the contract is always satisfied;
    subclasses with a vectorized implementation override it (and set
    :attr:`supports_blocks`) with bit-identical state evolution, which both
    the static driver and the batched adversarial game rely on.
    """

    #: True when :meth:`process_block` is vectorized (all registered
    #: algorithms); the default scalar loop leaves it False.
    supports_blocks = False

    def __init__(self):
        self.meter = SpaceMeter()

    @abc.abstractmethod
    def process(self, u: int, v: int) -> None:
        """Consume the next edge insertion ``{u, v}``."""

    def process_block(self, edges: np.ndarray) -> None:
        """Consume a ``(k, 2)`` block of edge insertions, in order.

        Default: the scalar :meth:`process` loop.  Overrides must evolve
        the exact same state (colorings, space gauges, randomness) as the
        equivalent sequence of :meth:`process` calls.
        """
        for u, v in np.asarray(edges).tolist():
            self.process(u, v)

    @abc.abstractmethod
    def query(self) -> dict[int, int]:
        """Return a coloring of every vertex, proper for the edges so far."""

    def color_stream(self, stream) -> dict[int, int]:
        """Protocol entry point: feed every edge, then query once.

        This is the static-stream (oblivious) driver; the adaptive setting
        goes through :func:`repro.adversaries.run_adversarial_game` instead.
        Block sources are fed through :meth:`process_block` block by block
        — the same edge order as the token path, vectorized whenever the
        algorithm overrides it — via the generic one-pass pass machine, so
        every one-pass algorithm is suspend/restorable at any block
        boundary for free (its whole state lives in object attributes
        between ``process_block`` calls).
        """
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        for token in stream.new_pass():
            if isinstance(token, EdgeToken):
                self.process(token.u, token.v)
        return self.query()

    # -- pass-machine protocol: one streaming pass, then query ----------
    supports_checkpoint = True

    def blocks_start(self) -> None:
        self._mach = {"phase": "stream"}

    def blocks_consumer(self):
        if require_machine(self)["phase"] == "stream":
            return OnePassStreamConsumer(self)
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        if mach["phase"] == "stream":
            # query() may mutate state (e.g. in-place conflict repair), so
            # its outcome is computed exactly once, here.
            self._mach = {"phase": "done", "coloring": self.query()}

    @property
    def palette_bound(self):
        """Declared palette size, or ``None`` if only asymptotic."""
        return getattr(self, "palette_size", None)

    @property
    def peak_space_bits(self) -> int:
        """Peak working-state bits charged to the meter."""
        return self.meter.peak_bits

    @property
    def random_bits_used(self) -> int:
        """Random bits consumed so far (oracle + seeds)."""
        return self.meter.random_bits
