"""Shared helpers for vectorized ``process_block`` implementations.

The sketch-based one-pass algorithms (Algorithms 2 and 3, the [CGS22]
baseline, the one-shot strawman) all follow the same shape: a buffer that
rolls when it reaches capacity, rare "monochromatic" sketch events found
by comparing hash values of the two endpoints, and per-edge space-gauge
updates.  Their block paths replay a whole ``(k, 2)`` edge array at once;
these helpers compute the sequential bookkeeping (buffer epochs, running
degrees, cached hash rows) in closed form so each algorithm's
``process_block`` stays a thin, vectorized transcription of its scalar
``process``.
"""


from repro.common.exceptions import ParameterError
from repro.kernels import dispatch
import numpy as np

__all__ = [
    "HASH_ROW_CACHE_MAX",
    "buffer_timeline",
    "cached_hash_rows",
    "group_pairs",
    "running_degrees",
    "sketch_process_block",
    "trim_hash_cache",
]

#: Upper bound on entries in the shared per-algorithm hash-row caches
#: (``_hash_cache`` dicts).  Static streams see at most ``n`` distinct
#: vertices, but a long adversarial-game session touches an unbounded key
#: stream; eviction (oldest-inserted first — see :func:`trim_hash_cache`)
#: keeps the cache O(1) in session length.  Evicted rows are recomputed
#: bit-identically on the next miss, so results never depend on the bound.
HASH_ROW_CACHE_MAX = 65536


def group_pairs(pairs: np.ndarray):
    """Group directed ``(x, y)`` pairs by ``x``: yields ``(x, ys_array)``.

    The canonical vectorized adjacency reduction shared by the block
    passes: one stable sort on the first column, then boundary splits, so
    each group's ``ys`` keep their input order.  ``x`` is a Python int;
    ``ys`` an int64 array view.  The sort core runs through the
    kernel-dispatch layer (stable sorts share one unique permutation, so
    tiers agree bit for bit).
    """
    if not len(pairs):
        return
    xs, ys, starts = dispatch("group_pairs", pairs)
    for x, group in zip(xs[starts].tolist(), np.split(ys, starts[1:])):
        yield x, group


def buffer_timeline(start_len: int, capacity: int, k: int):
    """Per-edge roll counts and buffer lengths for a roll-at-capacity buffer.

    Models the sketch algorithms' rule: before each insertion, a buffer
    holding ``capacity`` edges is cleared (one *roll*); the edge is then
    appended.  For ``k`` insertions starting from ``start_len`` buffered
    edges, returns ``(rolls, lengths)`` int64 arrays of length ``k``:
    ``rolls[e]`` counts the rolls that happened at or before edge ``e``
    (the epoch while processing edge ``e`` is ``curr0 + rolls[e]``), and
    ``lengths[e]`` is the buffer size just after edge ``e``'s append.

    After the block, the buffer holds the last ``lengths[-1]`` edges; a
    roll occurred within the block iff ``rolls[-1] > 0``.
    """
    if capacity < 1:
        raise ParameterError(f"buffer capacity must be >= 1, got {capacity}")
    e = np.arange(k, dtype=np.int64)
    rolls = (start_len + e) // capacity
    lengths = (start_len + e) % capacity + 1
    return rolls, lengths


def running_degrees(deg0: np.ndarray, edges: np.ndarray):
    """Degrees of each edge's endpoints just *before* its own insertion.

    ``deg0`` is the degree array entering the block.  Returns a ``(k, 2)``
    int64 array where row ``e`` holds the degrees of ``edges[e]`` after
    the first ``e`` insertions of the block — the value the scalar path's
    degree-cap check reads.  Degrees *after* edge ``e`` are this plus 1.
    The rank computation runs through the kernel-dispatch layer.
    """
    deg0 = np.ascontiguousarray(deg0, dtype=np.int64)
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    return dispatch("running_degrees", deg0, edges)


def trim_hash_cache(cache: dict, max_entries: int = HASH_ROW_CACHE_MAX) -> None:
    """Evict oldest-inserted entries until ``cache`` fits the bound.

    Dict insertion order is the eviction order (FIFO with
    :func:`cached_hash_rows` refreshing whole-block hits to the back, so
    block-path behaviour is LRU at block granularity).  Values are pure
    functions of their key, so eviction is invisible to results.
    """
    if len(cache) <= max_entries:
        return
    for key in list(cache.keys())[: len(cache) - max_entries]:
        del cache[key]


def cached_hash_rows(cache: dict, keys: np.ndarray, compute,
                     max_entries: int = HASH_ROW_CACHE_MAX):
    """Per-key hash rows from a dict cache, computing misses in one batch.

    ``keys`` is a 1-d int64 array (typically the unique vertices of a
    block); ``compute(missing)`` evaluates the hash family for an array of
    missing keys at once, returning ``(len(missing), ...)`` values.  The
    cache maps ``int key -> row array`` — the same structure the scalar
    ``_hash_all`` paths maintain, so both paths share one cache.  The
    cache is bounded: after the block's rows are gathered, this block's
    keys are refreshed to the back of the insertion order and anything
    beyond ``max_entries`` is evicted oldest-first
    (:func:`trim_hash_cache`), so adversarial-game sessions of any length
    hold at most ``max_entries`` rows.
    """
    missing = [x for x in keys.tolist() if x not in cache]
    if missing:
        rows = compute(np.asarray(missing, dtype=np.int64))
        for i, x in enumerate(missing):
            cache[x] = rows[i]
    if not len(keys):
        return np.empty((0,), dtype=np.int64)
    first = cache[int(keys[0])]
    out = np.empty((len(keys),) + first.shape, dtype=np.int64)
    for i, x in enumerate(keys.tolist()):
        out[i] = cache.pop(x)  # re-insert: this block's keys become newest
        cache[x] = out[i]
    trim_hash_cache(cache, max_entries)
    return out


def sketch_process_block(algo, edges: np.ndarray, *, num_epochs: int,
                         capacity: int) -> None:
    """Vectorized ``process_block`` for the D-sketch algorithms.

    Shared by Algorithm 3 (:class:`~repro.core.robust_lowrandom.
    LowRandomnessRobustColoring`) and the [CGS22] baseline, whose scalar
    ``process`` differs only in parameters: roll the buffer at
    ``capacity``, hash both endpoints under every ``(epoch, repetition)``
    polynomial, and append the rare monochromatic edges to the live future
    sketches ``D_{i, j}`` (wiping any that exceed ``algo.overflow_cap``).

    The state evolution — sketch contents, buffer, epoch counter, and the
    :class:`~repro.common.space.SpaceMeter` peak that the scalar path
    reaches via per-edge ``_update_space`` calls — is bit-identical to the
    equivalent ``process`` sequence.
    """
    k = len(edges)
    if k == 0:
        return
    start_len = len(algo._buffer)
    rolls, lengths = buffer_timeline(start_len, capacity, k)
    curr0 = algo._curr
    curr_at = curr0 + rolls
    stored0 = sum(
        len(dj) for di in algo._d_sets for dj in di if dj is not None
    )
    # Hash rows for this block's vertices (shared dict cache with the
    # scalar path), then monochromatic (edge, epoch, repetition) events,
    # computed in edge sub-batches to bound the (k, epochs, reps)
    # temporary.  Hash values are tiny (< family.m), so detection compares
    # narrow copies to halve memory traffic.
    uniq, inv = np.unique(edges, return_inverse=True)
    rows = cached_hash_rows(
        algo._hash_cache, uniq,
        lambda xs: algo.family.eval_coeffs(algo._coeffs, xs),
    )
    cmp_rows = rows.astype(np.int32) if algo.family.m <= 2**31 else rows
    inv = inv.reshape(-1, 2)
    ev_e, ev_i, ev_j = dispatch(
        "sketch_event_filter",
        cmp_rows,
        np.ascontiguousarray(inv[:, 0]),
        np.ascontiguousarray(inv[:, 1]),
    )
    # Pre-filter the two state-independent conditions vectorized: the
    # epoch window (line "for i in curr+1..") and already-dead sketches.
    # The cap/wipe logic on what survives stays sequential (and rare).
    reps = algo._coeffs.shape[1]
    alive = np.ones((num_epochs + 1, reps), dtype=bool)
    for epoch in range(1, num_epochs + 1):
        d_epoch = algo._d_sets[epoch]
        for j in range(reps):
            alive[epoch, j] = d_epoch[j] is not None
    epochs = ev_i + 1
    keep = (
        (epochs <= num_epochs)
        & (epochs >= curr_at[ev_e] + 1)
        & alive[np.minimum(epochs, num_epochs), ev_j]
    )
    ev_e, ev_i, ev_j = ev_e[keep], ev_i[keep], ev_j[keep]
    # Apply the surviving events sequentially (identical order to the
    # scalar path: by edge, then epoch, then repetition).
    stored_delta = np.zeros(k, dtype=np.int64)
    edges_list = edges.tolist()
    for e, i, j in zip(ev_e.tolist(), ev_i.tolist(), ev_j.tolist()):
        d_i = algo._d_sets[i + 1]
        d_ij = d_i[j]
        if d_ij is None:  # wiped earlier in this very block
            continue
        if len(d_ij) < algo.overflow_cap:
            u, v = edges_list[e]
            d_ij.append((u, v))
            stored_delta[e] += 1
        else:
            d_i[j] = None  # wipe (the sketch held exactly overflow_cap)
            stored_delta[e] -= len(d_ij)
    # Buffer and epoch counter.
    if rolls[-1] > 0:
        algo._buffer = [tuple(p) for p in edges_list[k - int(lengths[-1]):]]
    else:
        algo._buffer.extend(tuple(p) for p in edges_list)
    algo._curr = curr0 + int(rolls[-1])
    # Space peak: the scalar path updates gauges after every edge; the
    # per-edge totals are reconstructed in closed form instead.  The
    # scalar ``_update_space`` sets the D gauge before the buffer gauge,
    # so at a roll its transient total pairs the new sketch size with the
    # *pre-roll* buffer — reproduced here via the running maximum of the
    # adjacent buffer lengths.
    prev_lengths = np.concatenate(([start_len], lengths[:-1]))
    eff_lengths = np.maximum(lengths, prev_lengths)
    per_edge_total = (
        stored0 + np.cumsum(stored_delta) + eff_lengths
    ) * algo._edge_bits
    base = (
        algo.meter.current_bits
        - algo.meter.gauge("D sketches")
        - algo.meter.gauge("buffer B")
    )
    algo.meter.observe_peak(base + int(per_edge_total.max()))
    # Zero the varying gauges before the final update: setting one gauge
    # to its new value while the other still holds the pre-block value
    # would register a transient total the scalar path never reaches.
    algo.meter.set_gauge("D sketches", 0)
    algo.meter.set_gauge("buffer B", 0)
    algo._update_space()
