"""A replayable token stream that counts passes.

Multipass algorithms consume the stream only through ``new_pass()``; the
stream records how many passes were taken, which is the statistic
Theorem 1's ``O(log Delta * log log Delta)`` bound constrains.  An optional
per-token observer supports the communication-protocol simulation
(Corollary 3.11), which needs to know when the read position crosses the
Alice/Bob boundary.
"""

from repro.common.exceptions import StreamProtocolError
from repro.streaming.tokens import EdgeToken, ListToken

__all__ = ["TokenStream", "stream_from_graph", "stream_with_lists"]


class TokenStream:
    """An in-memory stream of :class:`EdgeToken` / :class:`ListToken`.

    Parameters
    ----------
    tokens:
        The fixed token sequence (adversarial order is just a permuted list).
    n:
        Number of vertices of the underlying graph.
    """

    def __init__(self, tokens, n: int):
        self.tokens = list(tokens)
        self.n = n
        self.passes_used = 0
        self._observer = None
        for t in self.tokens:
            if not isinstance(t, (EdgeToken, ListToken)):
                raise StreamProtocolError(f"bad token {t!r}")

    def __len__(self) -> int:
        return len(self.tokens)

    def set_observer(self, callback) -> None:
        """Install ``callback(pass_index, token_index)`` fired before each token."""
        self._observer = callback

    def new_pass(self):
        """Begin a pass; yields every token in order and counts the pass."""
        self.passes_used += 1
        pass_index = self.passes_used
        if self._observer is None:
            yield from self.tokens
        else:
            for i, token in enumerate(self.tokens):
                self._observer(pass_index, i)
                yield token

    def edge_count(self) -> int:
        """Number of edge tokens in the stream."""
        return sum(1 for t in self.tokens if isinstance(t, EdgeToken))

    def max_degree(self) -> int:
        """Max degree of the streamed graph (a full scan; used by harnesses)."""
        deg = [0] * self.n
        for t in self.tokens:
            if isinstance(t, EdgeToken):
                deg[t.u] += 1
                deg[t.v] += 1
        return max(deg, default=0)


def stream_from_graph(graph, seed=None, order="insertion") -> TokenStream:
    """Build an edge stream from a graph.

    ``order`` is one of ``"insertion"`` (sorted edge list), ``"random"``
    (shuffled with ``seed``), or ``"reverse"``.
    """
    edges = graph.edge_list()
    if order == "random":
        if seed is None:
            raise StreamProtocolError("random order requires a seed")
        from repro.common.rng import SeededRng

        SeededRng(seed).shuffle(edges)
    elif order == "reverse":
        edges = edges[::-1]
    elif order != "insertion":
        raise StreamProtocolError(f"unknown order {order!r}")
    return TokenStream([EdgeToken(u, v) for u, v in edges], graph.n)


def stream_with_lists(graph, lists, seed=None) -> TokenStream:
    """Build the Theorem 2 input: edges and ``(x, L_x)`` tokens, interleaved.

    With a ``seed`` the tokens are shuffled into an arbitrary interleaving
    (the theorem allows any order); otherwise lists come first.
    """
    tokens: list = [ListToken(x, frozenset(colors)) for x, colors in lists.items()]
    tokens.extend(EdgeToken(u, v) for u, v in graph.edge_list())
    if seed is not None:
        from repro.common.rng import SeededRng

        SeededRng(seed).shuffle(tokens)
    return TokenStream(tokens, graph.n)
