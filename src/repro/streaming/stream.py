"""A replayable token stream that counts passes.

Multipass algorithms consume the stream only through ``new_pass()``; the
stream records how many passes were taken, which is the statistic
Theorem 1's ``O(log Delta * log log Delta)`` bound constrains.  An optional
per-token observer supports the communication-protocol simulation
(Corollary 3.11), which needs to know when the read position crosses the
Alice/Bob boundary.

``TokenStream`` is the token-at-a-time view of the data plane; the
array-backed, chunked view lives in :mod:`repro.streaming.source`
(:class:`StreamSource` and friends).  The two interconvert:
``stream.as_source()`` wraps a token stream in a block source sharing its
pass counter, and ``source.as_token_stream()`` adapts any block source back
to token iteration.  The token list is treated as immutable once the stream
is constructed (``edge_count``/``max_degree`` are cached on first use).
"""


from repro.common.exceptions import StreamProtocolError
from repro.streaming.tokens import EdgeToken, ListToken
import repro.obs as obs
from repro.obs.clock import perf_now

__all__ = [
    "TokenStream",
    "order_edges",
    "ordered_edge_list",
    "stream_from_graph",
    "stream_with_lists",
]


class TokenStream:
    """An in-memory stream of :class:`EdgeToken` / :class:`ListToken`.

    Parameters
    ----------
    tokens:
        The fixed token sequence (adversarial order is just a permuted list).
    n:
        Number of vertices of the underlying graph.
    """

    def __init__(self, tokens, n: int):
        self.tokens = list(tokens)
        self.n = n
        self.passes_used = 0
        self.pass_seconds: list[float] = []
        self._observer = None
        self._edge_count = None
        self._max_degree = None
        for t in self.tokens:
            if not isinstance(t, (EdgeToken, ListToken)):
                raise StreamProtocolError(f"bad token {t!r}")

    def __len__(self) -> int:
        return len(self.tokens)

    def set_observer(self, callback) -> None:
        """Install ``callback(pass_index, token_index)`` fired before each token."""
        self._observer = callback

    def new_pass(self):
        """Begin a pass; yields every token in order and counts the pass.

        The wall time from the first token to exhaustion (including the
        consumer's per-token work) is appended to :attr:`pass_seconds`.
        """
        self.passes_used += 1
        pass_index = self.passes_used
        start = perf_now()
        if self._observer is None:
            yield from self.tokens
        else:
            for i, token in enumerate(self.tokens):
                self._observer(pass_index, i)
                yield token
        elapsed = perf_now() - start
        self.pass_seconds.append(elapsed)
        obs.emit_span("stream.pass", elapsed, backend="tokens",
                      pass_index=pass_index)

    def as_source(self, chunk_size=None):
        """A chunked :class:`~repro.streaming.source.MaterializedSource` view.

        The view shares this stream's pass counter and timings, so passes
        taken through either interface count once, consistently.
        """
        from repro.streaming.source import DEFAULT_CHUNK_SIZE, MaterializedSource

        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        return MaterializedSource(self, chunk_size=chunk_size)

    def edge_count(self) -> int:
        """Number of edge tokens in the stream (cached after first scan)."""
        if self._edge_count is None:
            self._edge_count = sum(
                1 for t in self.tokens if isinstance(t, EdgeToken)
            )
        return self._edge_count

    def max_degree(self) -> int:
        """Max degree of the streamed graph (cached; harnesses call this a lot)."""
        if self._max_degree is None:
            deg = [0] * self.n
            for t in self.tokens:
                if isinstance(t, EdgeToken):
                    deg[t.u] += 1
                    deg[t.v] += 1
            self._max_degree = max(deg, default=0)
        return self._max_degree


def order_edges(edges: list, seed=None, order="insertion") -> list:
    """Arrange an edge list into a stream order (in place for ``random``).

    ``order`` is one of ``"insertion"`` (the list as given — callers pass
    sorted edge lists), ``"random"`` (shuffled with ``seed``), or
    ``"reverse"``.  Deterministic for a given ``(edges, order, seed)`` —
    block sources rely on this to regenerate identical streams on every
    pass.
    """
    if order == "random":
        if seed is None:
            raise StreamProtocolError("random order requires a seed")
        from repro.common.rng import SeededRng

        SeededRng(seed).shuffle(edges)
    elif order == "reverse":
        edges = edges[::-1]
    elif order != "insertion":
        raise StreamProtocolError(f"unknown order {order!r}")
    return edges


def ordered_edge_list(graph, seed=None, order="insertion") -> list:
    """The graph's (sorted) edges in a stream order (see :func:`order_edges`)."""
    return order_edges(graph.edge_list(), seed=seed, order=order)


def stream_from_graph(graph, seed=None, order="insertion") -> TokenStream:
    """Build an edge stream from a graph (see :func:`ordered_edge_list`)."""
    edges = ordered_edge_list(graph, seed=seed, order=order)
    return TokenStream([EdgeToken(u, v) for u, v in edges], graph.n)


def stream_with_lists(graph, lists, seed=None) -> TokenStream:
    """Build the Theorem 2 input: edges and ``(x, L_x)`` tokens, interleaved.

    With a ``seed`` the tokens are shuffled into an arbitrary interleaving
    (the theorem allows any order); otherwise lists come first.
    """
    tokens: list = [ListToken(x, frozenset(colors)) for x, colors in lists.items()]
    tokens.extend(EdgeToken(u, v) for u, v in graph.edge_list())
    if seed is not None:
        from repro.common.rng import SeededRng

        SeededRng(seed).shuffle(tokens)
    return TokenStream(tokens, graph.n)
