"""Stream builders for the workload zoo (:mod:`repro.graph.zoo`).

The verification sweep needs every zoo family deliverable through every
data plane.  :func:`workload_source` wraps a ``(family, n, order, seed)``
cell in a :class:`~repro.streaming.source.GeneratorSource` — the edge
array (and its arrangement) is re-derived on every pass, so nothing about
the stream is retained between passes and the source works at any chunk
size.  :func:`workload_token_stream` is the token-path twin used as the
differential reference, and :func:`workload_list_stream` builds the
Theorem 2 input (edges + per-vertex list tokens) for ``needs_lists``
algorithms from the same underlying zoo graph.
"""

import numpy as np

from repro.graph.zoo import arrange_edges, workload_delta, workload_edges
from repro.streaming.source import DEFAULT_CHUNK_SIZE, GeneratorSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken

__all__ = [
    "workload_list_stream",
    "workload_source",
    "workload_stats",
    "workload_token_stream",
]


def workload_stats(family: str, n: int, seed: int) -> tuple[int, int, int]:
    """``(n_actual, delta, m)`` of a zoo cell (delta = true max degree)."""
    edges, n_actual = workload_edges(family, n, seed)
    return n_actual, workload_delta(n_actual, edges), len(edges)


def _arranged(family: str, n: int, order: str, seed: int):
    edges, n_actual = workload_edges(family, n, seed)
    return arrange_edges(n_actual, edges, order, seed), n_actual


def workload_source(
    family: str,
    n: int,
    order: str = "insertion",
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> GeneratorSource:
    """The zoo cell as a lazy block source (regenerated each pass)."""

    def regenerate():
        edges, _ = _arranged(family, n, order, seed)
        return edges

    _, n_actual = workload_edges(family, n, seed)
    return GeneratorSource(regenerate, n_actual, chunk_size=chunk_size)


def workload_token_stream(
    family: str, n: int, order: str = "insertion", seed: int = 0
) -> TokenStream:
    """The zoo cell as an in-memory token stream (differential reference)."""
    edges, n_actual = _arranged(family, n, order, seed)
    return TokenStream(
        [EdgeToken(int(u), int(v)) for u, v in edges.tolist()], n_actual
    )


def workload_list_stream(
    family: str,
    n: int,
    order: str = "insertion",
    seed: int = 0,
    universe: int | None = None,
) -> tuple[TokenStream, int]:
    """The Theorem 2 input for a zoo cell: ``(stream, universe)``.

    Edges follow the cell's arranged order; each vertex's
    ``(deg(v) + 1)``-color list token precedes the first edge (the theorem
    allows any interleaving, and the oracles need one deterministic
    choice).  ``universe`` defaults to ``2 * (delta + 1)``.
    """
    from repro.graph.graph import Graph
    from repro.graph.generators import random_list_assignment

    edges, n_actual = _arranged(family, n, order, seed)
    delta = workload_delta(n_actual, edges)
    if universe is None:
        universe = 2 * (delta + 1)
    graph = Graph(n_actual, [tuple(e) for e in edges.tolist()])
    lists = random_list_assignment(graph, palette_size=universe, seed=seed)
    tokens: list = [
        ListToken(x, frozenset(colors)) for x, colors in sorted(lists.items())
    ]
    tokens.extend(EdgeToken(int(u), int(v)) for u, v in edges.tolist())
    return TokenStream(tokens, n_actual), universe
