"""Array-backed, chunked stream sources: the block data plane.

A :class:`StreamSource` is the high-throughput complement to
:class:`~repro.streaming.stream.TokenStream`: one streaming pass yields
numpy edge *blocks* — ``(k, 2)`` int64 arrays of up to ``chunk_size`` edges
— instead of one Python object per edge.  List-coloring inputs interleave
:class:`ListToken` items between blocks, preserving the Theorem 2 "any
order" contract exactly.

The pass/space model is untouched by the representation change: a source
counts passes exactly like a token stream (one ``new_pass()`` = one pass,
whatever the chunk size), and algorithms charge their :class:`SpaceMeter`
identically on both paths.  See DESIGN.md, section "Data plane", for the
faithfulness argument.

Three concrete sources:

- :class:`MaterializedSource` — chunked view over an in-memory
  :class:`TokenStream`; shares its pass counter and supports the per-token
  observer hook (communication protocol) by degrading to single-token
  items when an observer is installed.
- :class:`GeneratorSource` — lazy: re-generates the edge sequence from a
  deterministic factory on every pass; O(chunk_size) memory, nothing is
  ever materialized across passes.
- :class:`FileSource` — memory-mapped binary edge file (format below);
  :func:`write_edge_file` is the writer utility.

Binary edge-file format (little-endian): 8-byte magic ``REPROED1``,
``uint64 n``, ``uint64 m``, then ``m`` pairs of ``int64`` endpoints.
Inputs too large for one file live in the sharded ``REPROED2`` container
(:mod:`repro.streaming.sharded`), whose shards are ordinary ``REPROED1``
payloads indexed by a manifest.
"""

import abc
import itertools
import os
import struct

import numpy as np

from repro.common.exceptions import EdgeFileError, StreamProtocolError
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken
import repro.obs as obs
from repro.obs.clock import perf_now

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FileSource",
    "GeneratorSource",
    "MaterializedSource",
    "SourceTokenStream",
    "StreamSource",
    "TOKEN_MATERIALIZE_LIMIT",
    "as_edge_blocks",
    "iter_edge_blocks",
    "read_edge_file_header",
    "write_edge_file",
]

DEFAULT_CHUNK_SIZE = 8192

#: Hard ceiling on ``SourceTokenStream.tokens`` materialization: one
#: Python object per edge is fine for diagnostics at test sizes, but on an
#: out-of-core source it is a silent multi-GB allocation.  Streams above
#: this edge count must be consumed via ``iter_tokens()`` / ``new_pass()``.
TOKEN_MATERIALIZE_LIMIT = 1 << 20

_MAGIC = b"REPROED1"
_HEADER = struct.Struct("<QQ")  # n, m


def as_edge_blocks(edges, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Normalize edges into ``(k, 2)`` int64 blocks of at most ``chunk_size``.

    Accepts an ``(m, 2)`` array (sliced without copying) or any iterable of
    ``(u, v)`` pairs (batched).  Yielded blocks are read-only: consumers
    mutating a block would otherwise silently corrupt the caller's array —
    and with it every later pass of a source regenerating from it.
    """
    if chunk_size < 1:
        raise StreamProtocolError(f"chunk_size must be >= 1, got {chunk_size}")

    def frozen(block):
        view = block.view()
        view.flags.writeable = False
        return view

    if isinstance(edges, np.ndarray):
        arr = edges
        if arr.dtype != np.int64:
            arr = arr.astype(np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise StreamProtocolError(
                f"edge array must have shape (m, 2), got {arr.shape}"
            )
        for start in range(0, len(arr), chunk_size):
            yield frozen(arr[start : start + chunk_size])
        return
    buf: list = []
    for pair in edges:
        buf.append(pair)
        if len(buf) >= chunk_size:
            yield frozen(np.asarray(buf, dtype=np.int64).reshape(-1, 2))
            buf = []
    if buf:
        yield frozen(np.asarray(buf, dtype=np.int64).reshape(-1, 2))


def iter_edge_blocks(edges, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Like :func:`as_edge_blocks`, but also accepts an iterable of blocks.

    The writers (:func:`write_edge_file`, the sharded container) take
    edges from three shapes of producer: an ``(m, 2)`` array, an iterable
    of ``(u, v)`` pairs, or — for out-of-core generators that never hold
    the graph — an iterable of ``(k, 2)`` arrays.  Blocks are re-chunked
    to at most ``chunk_size`` rows and yielded read-only, whatever the
    producer's own chunking.
    """
    if isinstance(edges, np.ndarray):
        yield from as_edge_blocks(edges, chunk_size)
        return
    if chunk_size < 1:
        raise StreamProtocolError(f"chunk_size must be >= 1, got {chunk_size}")
    it = iter(edges)
    try:
        first = next(it)
    except StopIteration:
        return
    if isinstance(first, np.ndarray) and first.ndim == 2:
        for block in itertools.chain([first], it):
            yield from as_edge_blocks(np.asarray(block), chunk_size)
    else:
        yield from as_edge_blocks(itertools.chain([first], it), chunk_size)


class StreamSource(abc.ABC):
    """A replayable, pass-counting stream of edge blocks (and list tokens).

    Subclasses implement :meth:`_pass_items`, yielding ``(k, 2)`` int64
    arrays and/or :class:`ListToken` items for one sweep of the input.  The
    base class handles pass counting, per-pass wall-time recording, cached
    degree statistics, and the token-compatibility shim.
    """

    def __init__(self, n: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if n < 0:
            raise StreamProtocolError(f"source needs n >= 0, got {n}")
        if chunk_size < 1:
            raise StreamProtocolError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.n = n
        self.chunk_size = chunk_size
        self._passes = 0
        self._pass_seconds: list[float] = []
        self._edge_count = None
        self._max_degree = None
        self._token_view = None

    # -- pass accounting (overridden by MaterializedSource to share the
    #    wrapped stream's counters) --------------------------------------
    @property
    def passes_used(self) -> int:
        """Passes taken so far (the Theorem 1 statistic)."""
        return self._passes

    @property
    def pass_seconds(self) -> list[float]:
        """Wall time of each completed pass, including consumer work.

        The recorded time spans first item to generator exhaustion.  A
        consumer whose per-pass work happens *after* exhausting the blocks
        (e.g. one deferred reduction over collected chunks) must charge
        that time back with ``pass_seconds[-1] += elapsed`` so token-path
        and block-path pass times stay comparable.
        """
        return self._pass_seconds

    def _count_pass(self) -> None:
        self._passes += 1

    def _record_pass_time(self, seconds: float) -> None:
        self._pass_seconds.append(seconds)
        obs.emit_span("stream.pass", seconds,
                      backend=type(self).__name__,
                      pass_index=self.passes_used)

    # -------------------------------------------------------------------
    def new_pass(self):
        """Begin a pass; yields edge blocks (and list tokens) in order."""
        self._count_pass()
        start = perf_now()
        yield from self._pass_items()
        self._record_pass_time(perf_now() - start)

    @abc.abstractmethod
    def _pass_items(self):
        """One sweep of the input as blocks / list tokens (no accounting)."""

    # -- resumable cursors (repro.persist) ------------------------------
    def tell(self) -> dict:
        """Cursor describing the source's replay position (passes started).

        Within-pass offsets are tracked by the consumer driving the pass
        (a pass is a generator; the source itself has no read head), so a
        full resume point is ``tell()`` plus the driver's item offset.
        """
        return {"passes": self.passes_used}

    def seek(self, cursor: dict) -> None:
        """Restore a :meth:`tell` cursor (fast-forwards the pass counter).

        Completed passes are not re-timed: :attr:`pass_seconds` keeps only
        timings observed by this process.
        """
        passes = int(cursor["passes"])
        if passes < 0:
            raise StreamProtocolError(f"cursor passes must be >= 0, got {passes}")
        self._seek_passes(passes)

    def _seek_passes(self, passes: int) -> None:
        self._passes = passes

    def resume_pass(self, offset: int = 0):
        """Re-enter a pass mid-flight: count it and yield items from ``offset``.

        The first ``offset`` items (blocks / list tokens, as yielded by
        :meth:`new_pass`) are skipped; sources replay deterministically,
        so the items yielded are exactly the uninterrupted pass's tail.
        Used by checkpoint restore for single-pass algorithms whose state
        already reflects the skipped prefix.
        """
        if offset < 0:
            raise StreamProtocolError(f"resume offset must be >= 0, got {offset}")
        self._count_pass()
        start = perf_now()
        yield from self._pass_items_from(offset)
        self._record_pass_time(perf_now() - start)

    def _pass_items_from(self, offset: int):
        """One sweep starting at item ``offset`` (generic skip loop)."""
        for i, item in enumerate(self._pass_items()):
            if i >= offset:
                yield item

    # -------------------------------------------------------------------
    def iter_items(self):
        """One sweep WITHOUT counting a pass (validation / diagnostics only).

        Streaming algorithms must never call this; it exists for the
        harness to reconstruct the input graph and for out-of-band
        instrumentation, mirroring ``TokenStream.tokens``.
        """
        return self._pass_items()

    def iter_tokens(self):
        """Token-at-a-time sweep WITHOUT counting a pass (diagnostics only)."""
        for item in self.iter_items():
            if isinstance(item, ListToken):
                yield item
            else:
                for u, v in item.tolist():
                    yield EdgeToken(u, v)

    # -------------------------------------------------------------------
    def edge_count(self) -> int:
        """Number of edges per pass (cached after one scan)."""
        if self._edge_count is None:
            self._scan_stats()
        return self._edge_count

    def note_edge_count(self, count: int) -> None:
        """Record an externally-counted edge total, skipping a stats sweep.

        For lazy sources a sweep re-generates the whole stream; callers
        that just iterated every block (e.g. run validation) hand the
        count over instead.
        """
        if self._edge_count is None:
            self._edge_count = count

    def max_degree(self) -> int:
        """Max degree of the streamed graph (cached after one scan)."""
        if self._max_degree is None:
            self._scan_stats()
        return self._max_degree

    def _scan_stats(self) -> None:
        deg = np.zeros(max(1, self.n), dtype=np.int64)
        count = 0
        for item in self.iter_items():
            if isinstance(item, ListToken):
                continue
            count += len(item)
            deg += np.bincount(item.ravel(), minlength=len(deg))
        self._edge_count = count
        self._max_degree = int(deg.max()) if self.n else 0

    # -------------------------------------------------------------------
    def as_token_stream(self) -> "SourceTokenStream":
        """The compatibility shim: token-at-a-time view sharing pass counts."""
        if self._token_view is None:
            self._token_view = SourceTokenStream(self)
        return self._token_view

    def set_observer(self, callback) -> None:
        """Per-token observers require a materialized stream."""
        raise StreamProtocolError(
            f"{type(self).__name__} does not support per-token observers; "
            "use a TokenStream / MaterializedSource"
        )


class MaterializedSource(StreamSource):
    """Chunked block view over an in-memory :class:`TokenStream`.

    Shares the wrapped stream's pass counter and timing list, so code
    holding either view sees consistent accounting.  ``ListToken``
    interleaving is preserved: edge runs are chunked into blocks, list
    tokens are yielded in place.  If the wrapped stream has a per-token
    observer installed (the communication-protocol hook), passes degrade
    to single-token items so the observer fires at exactly the original
    token granularity.
    """

    def __init__(self, stream: TokenStream, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if isinstance(stream, SourceTokenStream):
            raise StreamProtocolError(
                "cannot materialize a source-backed token shim; "
                "use the original source"
            )
        super().__init__(stream.n, chunk_size)
        self.stream = stream
        self._segments = None

    # pass accounting lives on the wrapped stream
    @property
    def passes_used(self) -> int:
        return self.stream.passes_used

    @property
    def pass_seconds(self) -> list[float]:
        return self.stream.pass_seconds

    def _count_pass(self) -> None:
        self.stream.passes_used += 1

    def _seek_passes(self, passes: int) -> None:
        self.stream.passes_used = passes

    def _record_pass_time(self, seconds: float) -> None:
        self.stream.pass_seconds.append(seconds)
        obs.emit_span("stream.pass", seconds,
                      backend=type(self).__name__,
                      pass_index=self.passes_used)

    # -------------------------------------------------------------------
    def _build_segments(self) -> list:
        segments: list = []
        buf: list = []

        def flush():
            if buf:
                block = np.asarray(buf, dtype=np.int64).reshape(-1, 2)
                # Blocks are cached and re-yielded every pass: freeze them
                # so a consumer mutating one cannot corrupt later passes
                # (matching FileSource's read-only mapping).
                block.flags.writeable = False
                segments.append(block)
                buf.clear()

        for token in self.stream.tokens:
            if isinstance(token, EdgeToken):
                buf.append((token.u, token.v))
                if len(buf) >= self.chunk_size:
                    flush()
            else:
                flush()
                segments.append(token)
        flush()
        return segments

    def _pass_items(self):
        if self._segments is None:
            self._segments = self._build_segments()
        return iter(self._segments)

    def new_pass(self):
        self._count_pass()
        start = perf_now()
        observer = self.stream._observer
        if observer is None:
            yield from self._pass_items()
        else:
            # Token-fidelity fallback: the observer contract is per-token.
            pass_index = self.stream.passes_used
            for i, token in enumerate(self.stream.tokens):
                observer(pass_index, i)
                if isinstance(token, EdgeToken):
                    yield np.array([[token.u, token.v]], dtype=np.int64)
                else:
                    yield token
        self._record_pass_time(perf_now() - start)

    def set_observer(self, callback) -> None:
        self.stream.set_observer(callback)


class GeneratorSource(StreamSource):
    """Lazy source: re-generates the edge sequence from a factory each pass.

    ``factory()`` is invoked once per sweep and must deterministically
    return the same edges every time — an ``(m, 2)`` array or an iterable
    of ``(u, v)`` pairs (e.g. a seeded generator re-run from scratch).
    Nothing is cached across passes; the memory profile is whatever the
    factory's is (a factory yielding pairs lazily keeps the whole source
    at O(chunk_size), one returning a full array costs O(m) while the
    pass runs).
    """

    def __init__(self, factory, n: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
        super().__init__(n, chunk_size)
        self.factory = factory

    def _pass_items(self):
        yield from as_edge_blocks(self.factory(), self.chunk_size)


def write_edge_file(path, n: int, edges) -> int:
    """Write edges to the binary edge-file format; returns the edge count.

    ``edges`` may be an ``(m, 2)`` array, any iterable of ``(u, v)``
    pairs, or an iterable of ``(k, 2)`` blocks (streamed through in
    chunks — the full list is never required in memory).

    The write is atomic (same-directory temp file + ``os.replace``,
    mirroring the ``REPROCK1`` checkpoint discipline).  The header's edge
    count is patched in only after the payload lands, so without the
    rename a writer dying mid-stream would leave a file that parses as a
    *valid empty* edge file — silent data loss, not a detectable error.
    A crash instead leaves the target absent (or its previous contents
    intact) and only a ``.tmp.<pid>`` file to sweep up.
    """
    m = 0
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(_HEADER.pack(n, 0))  # m patched below
            for block in iter_edge_blocks(edges):
                if len(block) and (block.min() < 0 or block.max() >= n):
                    raise StreamProtocolError(
                        f"edge endpoint out of range [0, {n})"
                    )
                fh.write(np.ascontiguousarray(block, dtype="<i8").tobytes())
                m += len(block)
            fh.seek(len(_MAGIC))
            fh.write(_HEADER.pack(n, m))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return m


def read_edge_file_header(path) -> tuple[int, int]:
    """The ``(n, m)`` header of a binary edge file.

    Raises :class:`EdgeFileError` (a :class:`ValueError`) on a missing or
    unreadable file, a wrong magic, or a header shorter than the fixed 24
    bytes, so probing an arbitrary path never surfaces an OS/struct/numpy
    internal error.
    """
    try:
        fh = open(path, "rb")
    except OSError as error:
        raise EdgeFileError(f"{path}: cannot read edge file: {error}") from error
    with fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise EdgeFileError(
                f"{path}: not a repro edge file (magic {magic!r}, "
                f"expected {_MAGIC!r})"
            )
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise EdgeFileError(
                f"{path}: truncated header ({len(magic) + len(header)} "
                f"bytes; a valid edge file has at least "
                f"{len(_MAGIC) + _HEADER.size})"
            )
        n, m = _HEADER.unpack(header)
    return int(n), int(m)


def _validate_edge_file_payload(path, m: int) -> None:
    """Check the payload length against the header before mapping it.

    Without this, a truncated or odd-length file surfaces as a numpy
    ``memmap``/reshape error deep inside the first pass; the verification
    layer (and any user pointing ``FileSource`` at a damaged file) wants
    a clean :class:`EdgeFileError` at construction time instead.
    """
    offset = len(_MAGIC) + _HEADER.size
    payload = os.path.getsize(path) - offset
    expected = 16 * m  # two little-endian int64 endpoints per edge
    if payload < expected:
        raise EdgeFileError(
            f"{path}: truncated edge file: header claims m={m} edges "
            f"({expected} payload bytes) but only {max(0, payload)} are "
            "present"
        )
    if payload > expected:
        # Anything but an exact match refuses to load: extra bytes mean
        # the file was overwritten shorter in place or damaged, and the
        # mapping below would silently ignore whichever half is stale.
        raise EdgeFileError(
            f"{path}: trailing garbage: header claims m={m} edges "
            f"({expected} payload bytes) but {payload} are present"
        )


class FileSource(StreamSource):
    """Memory-mapped binary edge file; passes read ``chunk_size`` rows at a time.

    The mapping is read-only; blocks handed to algorithms are views into
    the page cache, so re-reading passes costs no Python-object churn and
    no extra resident memory beyond the OS cache.
    """

    def __init__(self, path, chunk_size: int = DEFAULT_CHUNK_SIZE):
        n, m = read_edge_file_header(path)
        _validate_edge_file_payload(path, m)
        super().__init__(n, chunk_size)
        self.path = path
        self.m = m
        self._edge_count = m
        offset = len(_MAGIC) + _HEADER.size
        if m:
            self._mmap = np.memmap(
                path, dtype="<i8", mode="r", offset=offset, shape=(m, 2)
            )
        else:
            self._mmap = np.empty((0, 2), dtype=np.int64)

    def _pass_items(self):
        yield from self._pass_items_from(0)

    def _pass_items_from(self, offset: int):
        # Blocks are uniform chunk_size rows (except the last), so item
        # offset k maps directly to row k * chunk_size: resuming mid-pass
        # never re-reads the skipped prefix from disk.
        if self._mmap is None:
            raise StreamProtocolError(f"{self.path}: source is closed")
        for start in range(offset * self.chunk_size, self.m, self.chunk_size):
            yield np.asarray(
                self._mmap[start : start + self.chunk_size], dtype=np.int64
            )

    def close(self) -> None:
        """Release the memory mapping (subsequent passes raise)."""
        self._mmap = None


class SourceTokenStream(TokenStream):
    """Thin compatibility shim: token-at-a-time iteration over any source.

    Looks like a :class:`TokenStream` (``new_pass`` yields tokens,
    ``tokens`` materializes lazily for diagnostics) but delegates pass
    counting, timings, and cached statistics to the underlying source, so
    an algorithm consuming the shim and a harness reading the source agree
    on every measured quantity.
    """

    def __init__(self, source: StreamSource):
        # Deliberately skip TokenStream.__init__: tokens materialize lazily.
        self._source = source
        self.n = source.n
        self._observer = None
        self._tokens_cache = None

    @property
    def tokens(self) -> list:
        """Materialized token list — diagnostics only, size-gated.

        One Python object per edge: harmless at test sizes, a silent
        multi-GB allocation on an out-of-core source.  Streams larger
        than :data:`TOKEN_MATERIALIZE_LIMIT` refuse to materialize;
        consume them via :meth:`new_pass` / ``iter_tokens()`` instead.
        """
        if self._tokens_cache is None:
            count = self._source.edge_count()
            if count > TOKEN_MATERIALIZE_LIMIT:
                raise StreamProtocolError(
                    f"refusing to materialize {count} edges as tokens "
                    f"(limit {TOKEN_MATERIALIZE_LIMIT}); iterate the "
                    "source's blocks or iter_tokens() instead"
                )
            self._tokens_cache = list(self._source.iter_tokens())
        return self._tokens_cache

    @property
    def passes_used(self) -> int:
        return self._source.passes_used

    @property
    def pass_seconds(self) -> list[float]:
        return self._source.pass_seconds

    def __len__(self) -> int:
        # Delegates to the source's cached count: taking the length of a
        # huge stream must not trip the materialization gate above.
        return self._source.edge_count()

    def as_source(self, chunk_size=None) -> StreamSource:
        if chunk_size is not None and chunk_size != self._source.chunk_size:
            raise StreamProtocolError(
                f"shim's source already chunks at {self._source.chunk_size}; "
                f"cannot re-chunk to {chunk_size}"
            )
        return self._source

    def set_observer(self, callback) -> None:
        self._source.set_observer(callback)

    def new_pass(self):
        for item in self._source.new_pass():
            if isinstance(item, ListToken):
                yield item
            else:
                for u, v in item.tolist():
                    yield EdgeToken(u, v)

    def edge_count(self) -> int:
        return self._source.edge_count()

    def max_degree(self) -> int:
        return self._source.max_degree()
