"""Streaming model: tokens, multipass streams, block sources, interfaces.

The paper's two settings are represented directly:

- **Static multipass** (Section 3): a :class:`TokenStream` fixed in advance;
  a :class:`MultipassStreamingAlgorithm` reads it with ``stream.new_pass()``
  as many times as it needs, and the stream counts the passes.
- **Adversarial single-pass** (Section 4): a :class:`OnePassAlgorithm`
  exposes ``process(u, v)`` / ``query()``, and the game loop in
  :mod:`repro.adversaries` drives it against an adaptive adversary.

The data plane has two interchangeable views (see DESIGN.md, "Data
plane"): the token-at-a-time :class:`TokenStream` and the array-backed,
chunked :class:`StreamSource` (:class:`MaterializedSource`,
:class:`GeneratorSource`, :class:`FileSource`,
:class:`ShardedFileSource`), whose passes yield ``(k, 2)`` numpy edge
blocks.  Pass counting and space accounting are identical on both.
Inputs too large for one file live in the sharded ``REPROED2`` container
(see DESIGN.md, "Sharded edge container").
"""

from repro.streaming.model import MultipassStreamingAlgorithm, OnePassAlgorithm
from repro.streaming.sharded import (
    DEFAULT_SHARD_ROWS,
    ShardedFileSource,
    read_shard_manifest,
    verify_shard_checksums,
    write_sharded_edge_file,
)
from repro.streaming.source import (
    DEFAULT_CHUNK_SIZE,
    TOKEN_MATERIALIZE_LIMIT,
    FileSource,
    GeneratorSource,
    MaterializedSource,
    SourceTokenStream,
    StreamSource,
    as_edge_blocks,
    iter_edge_blocks,
    read_edge_file_header,
    write_edge_file,
)
from repro.streaming.stream import TokenStream, stream_from_graph, stream_with_lists
from repro.streaming.tokens import EdgeToken, ListToken, edge_tokens

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_SHARD_ROWS",
    "EdgeToken",
    "FileSource",
    "GeneratorSource",
    "ListToken",
    "MaterializedSource",
    "MultipassStreamingAlgorithm",
    "OnePassAlgorithm",
    "ShardedFileSource",
    "SourceTokenStream",
    "StreamSource",
    "TOKEN_MATERIALIZE_LIMIT",
    "TokenStream",
    "as_edge_blocks",
    "edge_tokens",
    "iter_edge_blocks",
    "read_edge_file_header",
    "read_shard_manifest",
    "stream_from_graph",
    "stream_with_lists",
    "verify_shard_checksums",
    "write_edge_file",
    "write_sharded_edge_file",
]
