"""Streaming model: tokens, multipass streams, and algorithm interfaces.

The paper's two settings are represented directly:

- **Static multipass** (Section 3): a :class:`TokenStream` fixed in advance;
  a :class:`MultipassStreamingAlgorithm` reads it with ``stream.new_pass()``
  as many times as it needs, and the stream counts the passes.
- **Adversarial single-pass** (Section 4): a :class:`OnePassAlgorithm`
  exposes ``process(u, v)`` / ``query()``, and the game loop in
  :mod:`repro.adversaries` drives it against an adaptive adversary.
"""

from repro.streaming.model import MultipassStreamingAlgorithm, OnePassAlgorithm
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken, edge_tokens

__all__ = [
    "EdgeToken",
    "ListToken",
    "MultipassStreamingAlgorithm",
    "OnePassAlgorithm",
    "TokenStream",
    "edge_tokens",
]
