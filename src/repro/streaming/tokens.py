"""Stream tokens: edges and (vertex, color-list) pairs.

Theorem 2's input is "a stream consisting of, in any order, the edges of G
and (x, L_x) pairs specifying the list of allowed colors for a vertex x";
the two token types below model exactly that.  Plain edge streams use only
:class:`EdgeToken`.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class EdgeToken:
    """An edge ``{u, v}`` arriving in the stream."""

    u: int
    v: int

    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v)


@dataclass(frozen=True)
class ListToken:
    """A ``(x, L_x)`` token carrying vertex x's allowed colors."""

    x: int
    colors: frozenset[int]


def edge_tokens(edges) -> list[EdgeToken]:
    """Wrap an iterable of ``(u, v)`` pairs as edge tokens."""
    return [EdgeToken(u, v) for u, v in edges]
