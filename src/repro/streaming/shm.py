"""Zero-copy edge transport over POSIX shared memory.

Two primitives move ``(k, 2)`` int64 edge blocks between processes
without pickling the arrays:

- :class:`SharedEdgeArray` — one immutable edge array published by a
  parent process and attached read-only by pool workers (the
  :class:`~repro.engine.grid.GridRunner` handoff: the workload array is
  written once and every worker maps the same pages).
- :class:`EdgeRing` — a byte ring buffer owned by the service
  dispatcher; each ``feed`` copies its block into a contiguous slot and
  ships only the ``{off, rows}`` descriptor over the control pipe.  The
  worker replies to requests in order, so slots free strictly FIFO and
  the entire allocator lives on the producer side — no cross-process
  locks, no shared counters.

Ring layout: allocations advance a head pointer; when a block does not
fit in the remaining top space, the remainder is retired as a ``skip``
slot and the allocation wraps to offset 0.  ``free`` pops slots in
allocation order (popping any skip first), so the live region is always
one contiguous span in ring order.

Resource-tracker note: on this interpreter (< 3.13, no ``track=``
parameter) attaching registers the segment with ``resource_tracker`` as
if the attacher owned it.  Pool workers are spawned children sharing the
parent's tracker process, where registration is a by-name set — the
attach-side registration is a no-op there, and the owner's ``unlink``
unregisters exactly once.  Do *not* "fix" the attach by unregistering:
with a shared tracker that removes the owner's entry instead.
"""

from collections import deque
from multiprocessing import shared_memory

import numpy as np

from repro.common.exceptions import StreamProtocolError

__all__ = ["EdgeRing", "SharedEdgeArray"]

#: Bytes per edge record: two little-endian int64 endpoints.
EDGE_BYTES = 16


def _attach_segment(name) -> shared_memory.SharedMemory:
    try:
        return shared_memory.SharedMemory(name=str(name))
    except (OSError, ValueError) as error:
        raise StreamProtocolError(
            f"cannot attach shared-memory segment {name!r}: {error}"
        ) from None


class SharedEdgeArray:
    """An ``(m, 2)`` int64 edge array published once, mapped by many readers.

    The owner calls :meth:`publish`; its picklable :attr:`handle` names
    the segment for workers, which call :meth:`attach` and read
    :attr:`array` — a read-only zero-copy view of the owner's pages.
    """

    def __init__(self, shm, rows: int, owner: bool):
        self._shm = shm
        self.rows = int(rows)
        self._owner = owner
        view = np.ndarray((self.rows, 2), dtype=np.int64, buffer=shm.buf)
        view.flags.writeable = False
        self.array = view

    @classmethod
    def publish(cls, edges) -> "SharedEdgeArray":
        """Copy ``edges`` into a fresh shared segment; returns the owner."""
        arr = np.ascontiguousarray(edges, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise StreamProtocolError(
                f"shared edge array must have shape (m, 2), got {arr.shape}"
            )
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        if len(arr):
            staging = np.ndarray(arr.shape, dtype=np.int64, buffer=shm.buf)
            staging[:] = arr
        return cls(shm, len(arr), owner=True)

    @property
    def handle(self) -> dict:
        """Picklable descriptor: pass this to workers, never the array."""
        return {"name": self._shm.name, "rows": self.rows}

    @classmethod
    def attach(cls, handle: dict) -> "SharedEdgeArray":
        """Map a published segment read-only (zero-copy)."""
        try:
            name, rows = handle["name"], int(handle["rows"])
        except (TypeError, KeyError, ValueError) as error:
            raise StreamProtocolError(
                f"bad shared-edge handle {handle!r}: {error}"
            ) from None
        return cls(_attach_segment(name), rows, owner=False)

    def close(self) -> None:
        """Unmap this process's view (lingering array refs defer the unmap)."""
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views die with the process
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; attached views stay valid)."""
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass


class EdgeRing:
    """Producer-owned shared-memory ring for edge-block handoff.

    The dispatcher (producer) calls :meth:`push` to place a block and
    sends the returned slot descriptor with the request; the worker
    (consumer) calls :meth:`read` to copy the block out.  Because the
    worker replies in request order, the dispatcher calls :meth:`free`
    on each response in the same order the slots were pushed — the
    allocator needs no synchronization with the consumer.
    """

    def __init__(self, shm, capacity: int, owner: bool):
        self._shm = shm
        self.capacity = int(capacity)
        self._owner = owner
        self._head = 0
        self._tail = 0
        self._used = 0
        self._wrapped = False
        self._live: deque = deque()  # ("blk" | "skip", offset, nbytes)

    @classmethod
    def create(cls, capacity_bytes: int) -> "EdgeRing":
        if capacity_bytes < EDGE_BYTES:
            raise StreamProtocolError(
                f"ring capacity must be >= {EDGE_BYTES} bytes, "
                f"got {capacity_bytes}"
            )
        shm = shared_memory.SharedMemory(create=True, size=int(capacity_bytes))
        return cls(shm, capacity_bytes, owner=True)

    @property
    def handle(self) -> dict:
        return {"name": self._shm.name, "capacity": self.capacity}

    @classmethod
    def attach(cls, handle: dict) -> "EdgeRing":
        try:
            name, capacity = handle["name"], int(handle["capacity"])
        except (TypeError, KeyError, ValueError) as error:
            raise StreamProtocolError(
                f"bad ring handle {handle!r}: {error}"
            ) from None
        return cls(_attach_segment(name), capacity, owner=False)

    # -- producer side ---------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def live_slots(self) -> int:
        return sum(1 for kind, _, _ in self._live if kind == "blk")

    def max_rows(self) -> int:
        """Largest single block the ring can ever hold."""
        return self.capacity // EDGE_BYTES

    def push(self, block) -> dict | None:
        """Copy ``block`` into the ring; slot descriptor, or None when full."""
        block = np.ascontiguousarray(block, dtype=np.int64)
        if block.ndim != 2 or block.shape[1] != 2:
            raise StreamProtocolError(
                f"ring blocks must have shape (k, 2), got {block.shape}"
            )
        rows = len(block)
        if rows == 0:
            return {"off": 0, "rows": 0}
        nbytes = rows * EDGE_BYTES
        if nbytes > self.capacity - self._used:
            return None
        if not self._live:
            self._head = self._tail = 0
            self._wrapped = False
        off = None
        if not self._wrapped:
            top = self.capacity - self._head
            if nbytes <= top:
                off = self._head
            elif nbytes <= self._tail and nbytes + top <= self.capacity - self._used:
                # Retire the top remainder as a skip slot and wrap.
                self._live.append(("skip", self._head, top))
                self._used += top
                self._wrapped = True
                self._head = 0
                off = 0
        elif nbytes <= self._tail - self._head:
            off = self._head
        if off is None:
            return None
        staging = np.ndarray(
            (rows, 2), dtype=np.int64, buffer=self._shm.buf, offset=off
        )
        staging[:] = block
        self._live.append(("blk", off, nbytes))
        self._used += nbytes
        self._head = off + nbytes
        return {"off": off, "rows": rows}

    def free(self, slot: dict) -> None:
        """Release the oldest live slot; must match FIFO push order."""
        if not slot or int(slot.get("rows", 0)) == 0:
            return  # empty blocks never occupied a slot
        while self._live and self._live[0][0] == "skip":
            _, _, nbytes = self._live.popleft()
            self._used -= nbytes
            self._tail = 0
            self._wrapped = False
        if not self._live:
            raise StreamProtocolError("ring free with no live slot")
        _, off, nbytes = self._live.popleft()
        if off != int(slot.get("off", -1)) \
                or nbytes != int(slot.get("rows", 0)) * EDGE_BYTES:
            raise StreamProtocolError(
                f"ring slots must be freed in FIFO push order; expected "
                f"offset {off} ({nbytes} bytes), got {slot}"
            )
        self._used -= nbytes
        self._tail = off + nbytes

    # -- consumer side ---------------------------------------------------
    def read(self, slot: dict) -> np.ndarray:
        """Copy one slot's block out of the ring."""
        rows = int(slot.get("rows", 0))
        if rows == 0:
            return np.empty((0, 2), dtype=np.int64)
        off = int(slot.get("off", -1))
        if off < 0 or off + rows * EDGE_BYTES > self.capacity:
            raise StreamProtocolError(f"ring slot out of bounds: {slot}")
        view = np.ndarray(
            (rows, 2), dtype=np.int64, buffer=self._shm.buf, offset=off
        )
        return view.copy()

    # ---------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views die with the process
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass
