"""repro: reproduction of "Coloring in Graph Streams via Deterministic and
Adversarially Robust Algorithms" (Assadi, Chakrabarti, Ghosh, Stoeckl,
PODS 2023; arXiv:2212.10641).

Public API highlights
---------------------
- :mod:`repro.engine` — the unified front door: ``run(spec, stream)`` over
  a string-keyed :class:`~repro.engine.AlgorithmRegistry` covering the four
  paper algorithms and the four baselines, uniform
  :class:`~repro.engine.ColoringResult` records, and declarative
  :class:`~repro.engine.GridSpec` experiment grids.
- :mod:`repro.adversaries` — the adaptive insert/query game.
- :mod:`repro.baselines` — [ACS22]/[ACK19]-style comparison points.
- :mod:`repro.analysis.experiments` — the T1-T10/A1-A4 experiment suite,
  expressed as engine grids.

Importing the algorithm classes from this top-level package
(``from repro import DeterministicColoring``) still works but emits a
:class:`DeprecationWarning`; construct algorithms through
:func:`repro.engine.run` / :data:`repro.engine.REGISTRY`, or import the
classes from their home modules (:mod:`repro.core`, :mod:`repro.baselines`,
:mod:`repro.adversaries`).

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

import importlib
import warnings

from repro.engine import (
    REGISTRY,
    AlgorithmRegistry,
    ColoringResult,
    GameSpec,
    GridRunner,
    GridSpec,
    RunSpec,
    StreamingColorer,
    run,
    run_game,
)
from repro.graph import Graph
from repro.streaming import TokenStream
from repro.streaming.stream import stream_from_graph, stream_with_lists

__version__ = "1.1.0"

# Pre-engine top-level names, kept importable through thin deprecation
# shims: name -> (home module, replacement hint).
_DEPRECATED = {
    "DeterministicColoring": ("repro.core", 'run(RunSpec(algorithm="deterministic", ...))'),
    "DeterministicListColoring": ("repro.core", 'run(RunSpec(algorithm="list_coloring", ...))'),
    "RobustColoring": ("repro.core", 'run_game(GameSpec(algorithm="robust", ...))'),
    "LowRandomnessRobustColoring": ("repro.core", 'run_game(GameSpec(algorithm="robust_lowrandom", ...))'),
    "two_party_coloring_protocol": ("repro.core", "repro.core.two_party_coloring_protocol"),
    "ConflictSeekingAdversary": ("repro.adversaries", "repro.adversaries.ConflictSeekingAdversary"),
    "LevelAwareAdversary": ("repro.adversaries", "repro.adversaries.LevelAwareAdversary"),
    "RandomAdversary": ("repro.adversaries", "repro.adversaries.RandomAdversary"),
    "run_adversarial_game": ("repro.adversaries", "repro.engine.run_game"),
}

__all__ = [
    "AlgorithmRegistry",
    "ColoringResult",
    "GameSpec",
    "Graph",
    "GridRunner",
    "GridSpec",
    "REGISTRY",
    "RunSpec",
    "StreamingColorer",
    "TokenStream",
    "__version__",
    "run",
    "run_game",
    "stream_from_graph",
    "stream_with_lists",
    *sorted(_DEPRECATED),
]


def __getattr__(name: str):
    if name in _DEPRECATED:
        module_name, hint = _DEPRECATED[name]
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated; use {hint} (home module: {module_name})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
