"""repro: reproduction of "Coloring in Graph Streams via Deterministic and
Adversarially Robust Algorithms" (Assadi, Chakrabarti, Ghosh, Stoeckl,
PODS 2023; arXiv:2212.10641).

Public API highlights
---------------------
- :class:`repro.core.DeterministicColoring` — Theorem 1's deterministic
  multipass semi-streaming ``(Delta+1)``-coloring.
- :class:`repro.core.DeterministicListColoring` — Theorem 2's
  ``(deg+1)``-list-coloring.
- :class:`repro.core.RobustColoring` — Theorem 3's adversarially robust
  ``O(Delta^{5/2})``-coloring (``beta`` gives the Corollary 4.7 tradeoff).
- :class:`repro.core.LowRandomnessRobustColoring` — Theorem 4's
  ``O(Delta^3)``-coloring within semi-streaming space including randomness.
- :mod:`repro.adversaries` — the adaptive insert/query game.
- :mod:`repro.baselines` — [ACS22]/[ACK19]-style comparison points.
- :mod:`repro.analysis.experiments` — the T1-T10/A1-A3 experiment suite.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.adversaries import (
    ConflictSeekingAdversary,
    LevelAwareAdversary,
    RandomAdversary,
    run_adversarial_game,
)
from repro.core import (
    DeterministicColoring,
    DeterministicListColoring,
    LowRandomnessRobustColoring,
    RobustColoring,
    two_party_coloring_protocol,
)
from repro.graph import Graph
from repro.streaming import TokenStream
from repro.streaming.stream import stream_from_graph, stream_with_lists

__version__ = "1.0.0"

__all__ = [
    "ConflictSeekingAdversary",
    "DeterministicColoring",
    "DeterministicListColoring",
    "Graph",
    "LevelAwareAdversary",
    "LowRandomnessRobustColoring",
    "RandomAdversary",
    "RobustColoring",
    "TokenStream",
    "__version__",
    "run_adversarial_game",
    "stream_from_graph",
    "stream_with_lists",
    "two_party_coloring_protocol",
]
