"""Subcube representation of proposed color sets (paper Section 3.2).

Algorithm 1 views each color ``c`` in ``[2^b]`` as the ``b``-bit vector of
``c - 1`` (the paper's canonical map ``a -> 1 + sum a_i 2^{i-1}``).  A
proposed color set ``P_x`` is a subcube of ``{0,1}^b`` in which the first
(lowest-indexed) ``f`` bits are fixed; each stage fixes the next ``k`` free
bits to one of ``2^k`` patterns (eq. (6)'s partition ``Q^{(i)}``).

A subcube is therefore ``(b, fixed, value)``: colors ``c`` with
``(c-1) mod 2^fixed == value``.  All set operations Algorithm 1 needs
(membership, restriction, counting within ``[1, hi]``) are O(1) arithmetic,
which is what makes the paper's ``O(b)``-bit encoding of ``P_x`` possible.
"""

from dataclasses import dataclass

from repro.common.exceptions import ReproError


@dataclass(frozen=True)
class Subcube:
    """Colors ``c in [1, 2^b]`` with the low ``fixed`` bits of ``c-1`` equal to ``value``."""

    b: int
    fixed: int
    value: int

    def __post_init__(self):
        if not 0 <= self.fixed <= self.b:
            raise ReproError(f"fixed={self.fixed} out of range [0, {self.b}]")
        if not 0 <= self.value < (1 << self.fixed):
            raise ReproError(f"value={self.value} needs exactly {self.fixed} bits")

    @classmethod
    def full(cls, b: int) -> "Subcube":
        """The trivial subcube ``{0,1}^b`` (all of ``[2^b]``)."""
        return cls(b, 0, 0)

    @property
    def free_bits(self) -> int:
        """Number of not-yet-fixed bits."""
        return self.b - self.fixed

    @property
    def size(self) -> int:
        """``2^{free_bits}`` colors."""
        return 1 << self.free_bits

    @property
    def is_singleton(self) -> bool:
        """True once every bit is fixed."""
        return self.fixed == self.b

    @property
    def sole_color(self) -> int:
        """The unique color of a singleton subcube."""
        if not self.is_singleton:
            raise ReproError("subcube is not a singleton")
        return self.value + 1

    def contains(self, color: int) -> bool:
        """Whether ``color`` (1-based) lies in the subcube."""
        if not 1 <= color <= (1 << self.b):
            return False
        return (color - 1) & ((1 << self.fixed) - 1) == self.value

    def pattern_of(self, color: int, k: int) -> int:
        """The next-``k``-bit pattern of a member color (bits fixed..fixed+k-1)."""
        if not self.contains(color):
            raise ReproError(f"color {color} not in subcube")
        return ((color - 1) >> self.fixed) & ((1 << k) - 1)

    def restrict(self, pattern: int, k: int) -> "Subcube":
        """Fix the next ``k`` free bits to ``pattern`` (a stage's tightening)."""
        if k < 0 or k > self.free_bits:
            raise ReproError(f"cannot fix {k} bits; only {self.free_bits} free")
        if not 0 <= pattern < (1 << k):
            raise ReproError(f"pattern {pattern} needs exactly {k} bits")
        return Subcube(self.b, self.fixed + k, self.value | (pattern << self.fixed))

    def count_in_range(self, hi: int) -> int:
        """``|subcube ∩ [1, hi]|`` — members with color value at most ``hi``.

        Used to evaluate ``|P_x ∩ L_x|`` arithmetically when
        ``L_x = [Delta+1]`` (footnote 4: ``P_x`` may contain colors outside
        ``L_x`` when ``Delta+1`` is not a power of two; they simply never
        count as available).
        """
        if hi <= 0:
            return 0
        hi = min(hi, 1 << self.b)
        # Count x in [0, hi) with x mod 2^fixed == value.
        step = 1 << self.fixed
        if self.value >= hi:
            return 0
        return (hi - 1 - self.value) // step + 1

    def members(self):
        """Iterate member colors in increasing order (use only when small)."""
        step = 1 << self.fixed
        for x in range(self.value, 1 << self.b, step):
            yield x + 1

    def subpattern_count(self, hi: int, pattern: int, k: int) -> int:
        """``|restrict(pattern, k) ∩ [1, hi]|`` without building the child."""
        return self.restrict(pattern, k).count_in_range(hi)
