"""Theorem 2: deterministic semi-streaming (deg+1)-list-coloring.

The input stream interleaves edges of ``G`` with ``(x, L_x)`` tokens giving
each vertex's allowed colors (``|L_x| >= deg(x) + 1``) drawn from a color
universe ``C`` of size ``O(n^2)``.  Same bounds as Theorem 1:
``O(n log^2 n)`` bits, ``O(log Delta log log Delta)`` passes.

Differences from Algorithm 1 (Section 3.5):

1. **Adaptive partitions instead of bit subcubes.**  Because ``P_x ∩ L_x``
   cannot be evaluated arithmetically for arbitrary lists, each stage first
   *selects* a partition ``Q^{(i)}`` of the color universe from the
   Lemma 3.10 family ``F`` (built on 2-universal hashing), choosing one for
   which ``sum_x a_R(P_x ∩ L_x)`` is sub-average, where
   ``a_R(S) = max_class(|S ∩ class| - 1)``.  The selection uses the same
   multi-level group-minimization trick as the hash search (the paper uses
   four passes over ``|F|^{1/4}``-sized groups).  Lemma 3.10 then drives
   the decay ``sum_x (|P_x ∩ L_x| - 1) -> <= |U|`` within
   ``ceil(2 log(Delta+1)/k)`` stages; we additionally stop early once the
   (stream-measurable) quantity actually drops below ``|U|``.
2. **Class choice per vertex** still uses the slack-weighted,
   Carter-Wegman-derandomized selector — "the analysis to prove that the
   potential does not increase by much requires no adjustment".
3. **Final singleton stage.**  Once ``sum_x (|P_x ∩ L_x| - 1) <= |U|``, a
   recording pass stores each ``P_x ∩ L_x`` explicitly (``<= 2|U|`` color
   ids in total), a marking pass flags colors used by colored neighbors,
   and the selector (candidates = the surviving colors themselves, uniform
   slack) picks each vertex's proposal.

``P_x`` is represented by its *chain*: the per-stage class indices under
the globally chosen partitions — the paper's ``O(log n)``-bit encoding.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2, floor_log2
from repro.core.deterministic import choose_family_prime
from repro.core.selector import SlackWeightedSelector
from repro.graph.coloring import coloring_array
from repro.graph.csr import dedupe_edges
from repro.graph.graph import Graph
from repro.graph.independent_set import turan_independent_set
from repro.hashing.partitions import PartitionFamily
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken


@dataclass
class ListRunStats:
    """Diagnostics: the Lemma 3.10 decay and pass/epoch counts."""

    passes: int = 0
    epochs: int = 0
    # (epoch, measured sum_x (|P_x ∩ L_x| - 1)) before each partition stage.
    list_mass_per_stage: list[tuple[int, int]] = field(default_factory=list)


class _EpochState:
    """Per-epoch PCC state: partition chains and the stage partitions."""

    def __init__(self, uncolored):
        self.members = sorted(uncolored)
        # chain[x] = tuple of chosen class indices, one per completed stage.
        self.chain = {x: () for x in self.members}
        # One color->class array per completed stage (shared by all x).
        self.partitions: list[np.ndarray] = []
        self.proposals: dict[int, int] = {}

    def contains(self, x: int, color: int) -> bool:
        """Whether ``color`` is in ``P_x`` (walk the chain)."""
        chain = self.chain[x]
        for arr, cls in zip(self.partitions, chain):
            if arr[color] != cls:
                return False
        return True

    def chains_equal(self, u: int, v: int) -> bool:
        return self.chain[u] == self.chain[v]


class DeterministicListColoring(MultipassStreamingAlgorithm):
    """Deterministic multipass (deg+1)-list-coloring (Theorem 2).

    Consumes either data-plane view.  Given a
    :class:`~repro.streaming.source.StreamSource` (edge blocks with
    ``ListToken`` items interleaved in place), every pass runs vectorized:
    list-token work is numpy per token (survivor masks over the chain's
    partition arrays), edge work is masked block arithmetic, and the
    Lemma 3.10 partition search scores whole candidate groups against the
    family's precomputed class table.  Both paths take the same passes,
    charge the same gauges, and produce the identical coloring.
    """

    supports_blocks = True

    def __init__(
        self,
        n: int,
        delta: int,
        color_universe_size: int,
        selection: str = "hash_family",
        prime_policy: str = "paper",
        prime=None,
        partition_levels: int = 4,
        instrument: bool = False,
        max_epochs=None,
    ):
        super().__init__()
        if selection not in ("hash_family", "greedy_slack"):
            raise ReproError(f"unknown selection mode {selection!r}")
        if color_universe_size < 1:
            raise ReproError("color universe must be non-empty")
        self.n = n
        self.delta = delta
        self.universe = color_universe_size
        # Colors are drawn from [1, universe]; per-vertex lists constrain
        # further, so validation goes through ``lists``, not this bound.
        self.palette_size = color_universe_size
        self.selection = selection
        self.prime_policy = prime_policy
        self.prime_override = prime
        self.partition_levels = partition_levels
        self.instrument = instrument
        if max_epochs is None:
            max_epochs = 4 * max(1, ceil_log2(max(2, delta + 1))) + 8
        self.max_epochs = max_epochs
        self.stats = ListRunStats()

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        n = self.n
        chi: dict[int, int] = {v: None for v in range(n)}
        uncolored = set(range(n))
        self.meter.set_gauge(
            "partial coloring", n * (ceil_log2(max(2, self.universe)) + 1)
        )
        if self.delta == 0:
            self._final_pass(stream, chi, uncolored)
            return chi
        epoch = 0
        while len(uncolored) * self.delta > n:
            epoch += 1
            if epoch > self.max_epochs:
                break
            self._run_epoch(stream, chi, uncolored, epoch)
        self._final_pass(stream, chi, uncolored)
        self.stats.passes = stream.passes_used
        self.stats.epochs = epoch
        return chi

    # ------------------------------------------------------------------
    # epoch
    # ------------------------------------------------------------------
    def _run_epoch(self, stream, chi, uncolored, epoch) -> None:
        n = self.n
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        s = 1 << k
        state = _EpochState(uncolored)
        self.meter.set_gauge(
            "pcc chains",
            len(state.members)
            * (2 * ceil_log2(max(2, self.delta + 1)) + ceil_log2(max(2, self.universe))),
        )
        max_partition_stages = ceil_div(2 * ceil_log2(self.delta + 1), k) + 2
        for stage in range(max_partition_stages):
            mass = self._list_mass(stream, chi, uncolored, state)
            if self.instrument:
                self.stats.list_mass_per_stage.append((epoch, mass))
            if mass <= len(state.members):
                break
            self._partition_stage(stream, chi, uncolored, state, s)
        self._final_stage(stream, chi, uncolored, state)
        self._commit(stream, chi, uncolored, state)
        self.meter.clear_gauge("pcc chains")

    # ------------------------------------------------------------------
    # block-path state snapshots (derived per pass; O(n) << O(m) scan cost)
    # ------------------------------------------------------------------
    def _chain_arrays(self, state):
        """``(member_mask, chain_matrix)`` arrays mirroring the PCC chains.

        ``chain_matrix[t, x]`` is vertex ``x``'s class at stage ``t``
        (-1 for non-members), so chain containment and chain equality
        become branch-free array comparisons.
        """
        n = self.n
        stages = len(state.partitions)
        member_mask = np.zeros(n, dtype=bool)
        if state.members:
            member_mask[state.members] = True
        chain_matrix = np.full((stages, n), -1, dtype=np.int64)
        for x in state.members:
            chain = state.chain[x]
            for t in range(stages):
                chain_matrix[t, x] = chain[t]
        return member_mask, chain_matrix

    def _contains_colors(self, state, x, colors: np.ndarray) -> np.ndarray:
        """Mask of ``colors`` inside ``P_x`` (vectorized chain walk)."""
        mask = np.ones(len(colors), dtype=bool)
        for arr, cls in zip(state.partitions, state.chain[x]):
            mask &= arr[colors] == cls
        return mask

    def _contains_pairs(self, state, chain_matrix, xs, colors) -> np.ndarray:
        """Mask where ``colors[i]`` lies in ``P_{xs[i]}``, elementwise."""
        mask = np.ones(len(xs), dtype=bool)
        for t, arr in enumerate(state.partitions):
            mask &= arr[colors] == chain_matrix[t, xs]
        return mask

    def _token_colors(self, token) -> np.ndarray:
        return np.fromiter(token.colors, dtype=np.int64, count=len(token.colors))

    # ------------------------------------------------------------------
    def _list_mass(self, stream, chi, uncolored, state) -> int:
        """One pass: the Lemma 3.10 decay quantity ``sum_x (|P_x ∩ L_x| - 1)``."""
        total = 0
        seen = set()
        if isinstance(stream, StreamSource):
            for item in stream.new_pass():
                if not isinstance(item, ListToken):
                    continue
                x = item.x
                if x in uncolored and x not in seen:
                    seen.add(x)
                    colors = self._token_colors(item)
                    count = int(self._contains_colors(state, x, colors).sum())
                    total += max(0, count - 1)
            return total
        for token in stream.new_pass():
            if isinstance(token, ListToken) and token.x in uncolored:
                if token.x in seen:
                    continue
                seen.add(token.x)
                count = sum(1 for c in token.colors if state.contains(token.x, c))
                total += max(0, count - 1)
        return total

    # ------------------------------------------------------------------
    # partition stages
    # ------------------------------------------------------------------
    def _partition_stage(self, stream, chi, uncolored, state, s) -> None:
        family = PartitionFamily(self.universe, s)
        key = self._select_partition(stream, uncolored, state, family)
        partition_arr = self._materialize(family, key)
        # --- slack counter pass (both base and used, per class) ---
        members = state.members
        self.meter.set_gauge(
            "stage counters",
            len(members) * s * 2 * ceil_log2(max(2, self.delta + 2)),
        )
        if isinstance(stream, StreamSource):
            slacks = self._stage_slacks_blocks(
                stream, chi, uncolored, state, partition_arr, s
            )
        else:
            base = {x: np.zeros(s, dtype=np.int64) for x in members}
            used = {x: np.zeros(s, dtype=np.int64) for x in members}
            seen_lists = set()
            for token in stream.new_pass():
                if isinstance(token, ListToken):
                    x = token.x
                    if x in uncolored and x not in seen_lists:
                        seen_lists.add(x)
                        for c in token.colors:
                            if state.contains(x, c):
                                base[x][partition_arr[c]] += 1
                elif isinstance(token, EdgeToken):
                    for x, y in ((token.u, token.v), (token.v, token.u)):
                        if x in uncolored:
                            color = chi.get(y)
                            if color is not None and state.contains(x, color):
                                used[x][partition_arr[color]] += 1
            slacks = {x: np.maximum(0, base[x] - used[x]) for x in members}
        proposals = self._select_classes(stream, uncolored, state, slacks, s)
        for x in members:
            if slacks[x][proposals[x]] <= 0:
                raise ReproError(
                    f"list stage chose a zero-slack class for vertex {x}"
                )
            state.chain[x] = state.chain[x] + (proposals[x],)
        state.partitions.append(partition_arr)
        self.meter.clear_gauge("stage counters")

    def _stage_slacks_blocks(self, stream, chi, uncolored, state, partition_arr, s):
        """Block twin of the slack counter pass.

        List tokens contribute to per-vertex ``base`` histograms via one
        masked ``np.add.at`` each; edge blocks accumulate ``used`` with a
        flat ``np.bincount`` over ``(vertex, class)`` keys, exactly as the
        deterministic algorithm's stage pass does.
        """
        n = self.n
        members = state.members
        member_mask, chain_matrix = self._chain_arrays(state)
        chi_arr = coloring_array(n, chi)
        base = {x: np.zeros(s, dtype=np.int64) for x in members}
        used_counts = np.zeros(n * s, dtype=np.int64)
        seen_lists = set()
        for item in stream.new_pass():
            if isinstance(item, ListToken):
                x = item.x
                if x in uncolored and x not in seen_lists:
                    seen_lists.add(x)
                    colors = self._token_colors(item)
                    colors = colors[self._contains_colors(state, x, colors)]
                    np.add.at(base[x], partition_arr[colors], 1)
            elif isinstance(item, np.ndarray):
                for xs, ys in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
                    cy = chi_arr[ys]
                    sel = member_mask[xs] & (cy > 0)
                    if not sel.any():
                        continue
                    xs_s, cy_s = xs[sel], cy[sel]
                    inside = self._contains_pairs(state, chain_matrix, xs_s, cy_s)
                    if inside.any():
                        used_counts += np.bincount(
                            xs_s[inside] * s + partition_arr[cy_s[inside]],
                            minlength=n * s,
                        )
        used = used_counts.reshape(n, s)
        return {x: np.maximum(0, base[x] - used[x]) for x in members}

    def _select_partition(self, stream, uncolored, state, family):
        """The paper's 4-pass group minimization over the Lemma 3.10 family.

        Each pass computes ``sum_R sum_x a_R(P_x ∩ L_x)`` for each group of
        candidate partitions (computable online: ``a_R`` is evaluated the
        moment an ``(x, L_x)`` token arrives), keeps the best group, and
        splits it further; the last pass scores individual partitions.
        """
        candidates = list(family.members())
        levels = max(1, self.partition_levels)
        for level in range(levels):
            if len(candidates) == 1:
                break
            # Group count ~ |candidates|^(1/(levels - level)) so the last
            # level reaches singletons, mirroring |F|^{1/4} groups per pass.
            remaining = levels - level
            group_count = max(2, round(len(candidates) ** (1.0 / remaining)))
            group_size = ceil_div(len(candidates), group_count)
            groups = [
                candidates[i : i + group_size]
                for i in range(0, len(candidates), group_size)
            ]
            scores = self._score_partition_groups(stream, uncolored, state, family, groups)
            candidates = groups[int(np.argmin(scores))]
        if len(candidates) > 1:
            scores = self._score_partition_groups(
                stream, uncolored, state, family, [[key] for key in candidates]
            )
            return candidates[int(np.argmin(scores))]
        return candidates[0]

    def _score_partition_groups(self, stream, uncolored, state, family, groups):
        """One pass: ``sum over group members of sum_x a_R(P_x ∩ L_x)``."""
        self.meter.set_gauge(
            "partition accumulators", len(groups) * 2 * ceil_log2(max(2, self.n))
        )
        if isinstance(stream, StreamSource):
            scores = self._score_partition_groups_blocks(
                stream, uncolored, state, family, groups
            )
            self.meter.clear_gauge("partition accumulators")
            return scores
        scores = np.zeros(len(groups))
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, ListToken) or token.x not in uncolored:
                continue
            x = token.x
            if x in seen:
                continue
            seen.add(x)
            survivors = [c for c in token.colors if state.contains(x, c)]
            if not survivors:
                continue
            for gi, group in enumerate(groups):
                for a, b in group:
                    counts = np.zeros(family.s, dtype=np.int64)
                    for c in survivors:
                        counts[family.class_of(a, b, c)] += 1
                    scores[gi] += max(0, int(counts.max()) - 1)
        self.meter.clear_gauge("partition accumulators")
        return scores

    def _score_partition_groups_blocks(self, stream, uncolored, state, family, groups):
        """Block twin of the group-scoring pass.

        All candidate members are scored at once against the family's
        precomputed color -> class table: per list token, one occupancy
        bincount over ``(member, class)`` keys yields every member's
        ``a_R`` value, then a grouped sum.  Scores are integer-valued
        float sums, exactly as the token path accumulates them.
        """
        s = family.s
        table = family.class_table()
        row_of = {key: i for i, key in enumerate(family.members())}
        cand_keys = [key for group in groups for key in group]
        rows = np.fromiter(
            (row_of[key] for key in cand_keys), dtype=np.int64, count=len(cand_keys)
        )
        group_ids = np.repeat(
            np.arange(len(groups)), [len(group) for group in groups]
        )
        sub_table = table[rows]  # (M, universe + 1)
        offsets = np.arange(len(rows), dtype=np.int64)[:, None] * s
        scores = np.zeros(len(groups))
        seen = set()
        for item in stream.new_pass():
            if not isinstance(item, ListToken) or item.x not in uncolored:
                continue
            x = item.x
            if x in seen:
                continue
            seen.add(x)
            colors = self._token_colors(item)
            survivors = colors[self._contains_colors(state, x, colors)]
            if not len(survivors):
                continue
            occupancy = np.bincount(
                (sub_table[:, survivors] + offsets).ravel(),
                minlength=len(rows) * s,
            ).reshape(len(rows), s)
            per_member = np.maximum(0, occupancy.max(axis=1) - 1)
            scores += np.bincount(
                group_ids, weights=per_member, minlength=len(groups)
            )
        return scores

    def _materialize(self, family, key) -> np.ndarray:
        """Color -> class array for the chosen partition (index 1..universe)."""
        return family.class_array(*key)

    def _select_classes(self, stream, uncolored, state, slacks, s):
        """Slack-weighted class choice: greedy or 3-pass hash-family search."""
        members = state.members
        if self.selection == "greedy_slack":
            return {x: int(np.argmax(slacks[x])) for x in members}
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=s)
        for x in members:
            selector.register_vertex(x, np.arange(s), slacks[x])
        self.meter.set_gauge("part accumulators", selector.accumulator_bits())
        conflict = self._conflict_edges(stream, uncolored, state)
        part = selector.part_sums(conflict)
        a_star = int(np.argmin(part)) if len(conflict) else 0
        conflict = self._conflict_edges(stream, uncolored, state)
        member = selector.member_sums(a_star, conflict)
        b_star = int(np.argmin(member)) if len(conflict) else 0
        self.meter.clear_gauge("part accumulators")
        return {x: selector.proposal_for(x, a_star, b_star) for x in members}

    def _conflict_edges(self, stream, uncolored, state):
        """One pass: edges inside U whose endpoints share the same chain.

        The block path returns the identical edge sequence as a ``(k, 2)``
        array — unique, in first-occurrence stream order — because the
        selector accumulates float potentials per edge and summation order
        matters for exact argmin ties.
        """
        if isinstance(stream, StreamSource):
            member_mask, chain_matrix = self._chain_arrays(state)
            chunks = []
            for item in stream.new_pass():
                if not isinstance(item, np.ndarray):
                    continue
                u, v = item[:, 0], item[:, 1]
                sel = member_mask[u] & member_mask[v]
                for t in range(len(state.partitions)):
                    sel &= chain_matrix[t, u] == chain_matrix[t, v]
                if sel.any():
                    chunks.append(item[sel])
            if not chunks:
                return np.empty((0, 2), dtype=np.int64)
            return dedupe_edges(self.n, np.concatenate(chunks), keep_order=True)
        edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and state.chains_equal(u, v):
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append(key)
        return edges

    # ------------------------------------------------------------------
    # final singleton stage
    # ------------------------------------------------------------------
    def _final_stage(self, stream, chi, uncolored, state) -> None:
        members = state.members
        use_blocks = isinstance(stream, StreamSource)
        # Recording pass: P_x ∩ L_x explicitly (<= 2|U| ids total after decay).
        candidates: dict[int, list[int]] = {x: [] for x in members}
        seen = set()
        if use_blocks:
            for item in stream.new_pass():
                if isinstance(item, ListToken) and item.x in uncolored:
                    if item.x in seen:
                        continue
                    seen.add(item.x)
                    colors = self._token_colors(item)
                    inside = colors[self._contains_colors(state, item.x, colors)]
                    candidates[item.x] = np.sort(inside).tolist()
        else:
            for token in stream.new_pass():
                if isinstance(token, ListToken) and token.x in uncolored:
                    if token.x in seen:
                        continue
                    seen.add(token.x)
                    candidates[token.x] = sorted(
                        c for c in token.colors if state.contains(token.x, c)
                    )
        total_ids = sum(len(v) for v in candidates.values())
        self.meter.set_gauge(
            "final-stage candidates", total_ids * ceil_log2(max(2, self.universe))
        )
        # Marking pass: drop colors used by already-colored neighbors.
        unavailable: dict[int, set[int]] = {x: set() for x in members}
        if use_blocks:
            member_mask, _ = self._chain_arrays(state)
            chi_arr = coloring_array(self.n, chi)
            key_chunks = []
            for item in stream.new_pass():
                if not isinstance(item, np.ndarray):
                    continue
                for xs, ys in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
                    cy = chi_arr[ys]
                    sel = member_mask[xs] & (cy > 0)
                    if sel.any():
                        key_chunks.append(
                            xs[sel] * (self.universe + 1) + cy[sel]
                        )
            if key_chunks:
                keys = np.unique(np.concatenate(key_chunks))
                for x, color in zip(
                    (keys // (self.universe + 1)).tolist(),
                    (keys % (self.universe + 1)).tolist(),
                ):
                    unavailable[x].add(color)
        else:
            for token in stream.new_pass():
                if not isinstance(token, EdgeToken):
                    continue
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None:
                            unavailable[x].add(color)
        avail = {
            x: [c for c in candidates[x] if c not in unavailable[x]]
            for x in members
        }
        for x in members:
            if not avail[x]:
                raise ReproError(
                    f"vertex {x} has no available color at the final stage; "
                    "slack invariant violated"
                )
        # Selection: candidates are the colors themselves (uniform slack).
        if self.selection == "greedy_slack":
            state.proposals = {x: avail[x][0] for x in members}
        else:
            p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
            selector = SlackWeightedSelector(p, self.n, cid_space=self.universe + 1)
            for x in members:
                selector.register_vertex(x, avail[x], [1] * len(avail[x]))
            conflict = self._conflict_edges(stream, uncolored, state)
            part = selector.part_sums(conflict)
            a_star = int(np.argmin(part)) if len(conflict) else 0
            conflict = self._conflict_edges(stream, uncolored, state)
            member = selector.member_sums(a_star, conflict)
            b_star = int(np.argmin(member)) if len(conflict) else 0
            state.proposals = {
                x: selector.proposal_for(x, a_star, b_star) for x in members
            }
        self.meter.clear_gauge("final-stage candidates")

    # ------------------------------------------------------------------
    def _commit(self, stream, chi, uncolored, state) -> None:
        """End-of-epoch: collect F, Turán-commit an independent set."""
        proposals = state.proposals
        if isinstance(stream, StreamSource):
            member_mask, _ = self._chain_arrays(state)
            prop = np.full(self.n, -1, dtype=np.int64)
            for x, proposal in proposals.items():
                prop[x] = proposal
            chunks = []
            for item in stream.new_pass():
                if not isinstance(item, np.ndarray):
                    continue
                u, v = item[:, 0], item[:, 1]
                sel = member_mask[u] & member_mask[v] & (prop[u] == prop[v])
                if sel.any():
                    chunks.append(item[sel])
            conflict_edges = (
                dedupe_edges(self.n, np.concatenate(chunks), keep_order=True)
                if chunks
                else np.empty((0, 2), dtype=np.int64)
            ).tolist()
        else:
            conflict_edges = []
            seen = set()
            for token in stream.new_pass():
                if not isinstance(token, EdgeToken):
                    continue
                u, v = token.u, token.v
                if u in uncolored and v in uncolored and proposals[u] == proposals[v]:
                    key = (min(u, v), max(u, v))
                    if key not in seen:
                        seen.add(key)
                        conflict_edges.append(key)
        members = state.members
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        for i in turan_independent_set(conflict_graph):
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)

    # ------------------------------------------------------------------
    def _final_pass(self, stream, chi, uncolored) -> None:
        """Collect edges incident to U plus U's lists; finish greedily."""
        adjacency: dict[int, set[int]] = {x: set() for x in uncolored}
        lists: dict[int, set[int]] = {}
        if isinstance(stream, StreamSource):
            unc = np.zeros(self.n, dtype=bool)
            if uncolored:
                unc[list(uncolored)] = True
            pair_chunks = []
            for item in stream.new_pass():
                if isinstance(item, ListToken):
                    if item.x in uncolored and item.x not in lists:
                        lists[item.x] = set(item.colors)
                elif isinstance(item, np.ndarray):
                    keep = unc[item[:, 0]] | unc[item[:, 1]]
                    if keep.any():
                        pair_chunks.append(item[keep])
            if pair_chunks:
                from repro.streaming.blocks import group_pairs

                arr = np.concatenate(pair_chunks)
                fwd = arr[unc[arr[:, 0]]]
                rev = arr[unc[arr[:, 1]]][:, ::-1]
                pairs = np.concatenate([fwd, rev])
                keys = np.unique(pairs[:, 0] * self.n + pairs[:, 1])
                for x, ys in group_pairs(
                    np.stack([keys // self.n, keys % self.n], axis=1)
                ):
                    adjacency[x] = set(ys.tolist())
        else:
            for token in stream.new_pass():
                if isinstance(token, ListToken):
                    if token.x in uncolored and token.x not in lists:
                        lists[token.x] = set(token.colors)
                elif isinstance(token, EdgeToken):
                    for x, y in ((token.u, token.v), (token.v, token.u)):
                        if x in uncolored:
                            adjacency[x].add(y)
        stored = sum(len(a) for a in adjacency.values())
        self.meter.set_gauge(
            "final edges+lists",
            stored * 2 * ceil_log2(max(2, self.n))
            + sum(len(l) for l in lists.values()) * ceil_log2(max(2, self.universe)),
        )
        for x in sorted(uncolored):
            if x not in lists:
                raise ReproError(f"stream never provided a list for vertex {x}")
            used_colors = {chi[y] for y in adjacency[x] if chi.get(y) is not None}
            free = sorted(lists[x] - used_colors)
            if not free:
                raise ReproError(f"no free list color for vertex {x}")
            chi[x] = free[0]
        uncolored.clear()
        self.meter.clear_gauge("final edges+lists")
