"""Theorem 2: deterministic semi-streaming (deg+1)-list-coloring.

The input stream interleaves edges of ``G`` with ``(x, L_x)`` tokens giving
each vertex's allowed colors (``|L_x| >= deg(x) + 1``) drawn from a color
universe ``C`` of size ``O(n^2)``.  Same bounds as Theorem 1:
``O(n log^2 n)`` bits, ``O(log Delta log log Delta)`` passes.

Differences from Algorithm 1 (Section 3.5):

1. **Adaptive partitions instead of bit subcubes.**  Because ``P_x ∩ L_x``
   cannot be evaluated arithmetically for arbitrary lists, each stage first
   *selects* a partition ``Q^{(i)}`` of the color universe from the
   Lemma 3.10 family ``F`` (built on 2-universal hashing), choosing one for
   which ``sum_x a_R(P_x ∩ L_x)`` is sub-average, where
   ``a_R(S) = max_class(|S ∩ class| - 1)``.  The selection uses the same
   multi-level group-minimization trick as the hash search (the paper uses
   four passes over ``|F|^{1/4}``-sized groups).  Lemma 3.10 then drives
   the decay ``sum_x (|P_x ∩ L_x| - 1) -> <= |U|`` within
   ``ceil(2 log(Delta+1)/k)`` stages; we additionally stop early once the
   (stream-measurable) quantity actually drops below ``|U|``.
2. **Class choice per vertex** still uses the slack-weighted,
   Carter-Wegman-derandomized selector — "the analysis to prove that the
   potential does not increase by much requires no adjustment".
3. **Final singleton stage.**  Once ``sum_x (|P_x ∩ L_x| - 1) <= |U|``, a
   recording pass stores each ``P_x ∩ L_x`` explicitly (``<= 2|U|`` color
   ids in total), a marking pass flags colors used by colored neighbors,
   and the selector (candidates = the surviving colors themselves, uniform
   slack) picks each vertex's proposal.

``P_x`` is represented by its *chain*: the per-stage class indices under
the globally chosen partitions — the paper's ``O(log n)``-bit encoding.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2, floor_log2
from repro.core.deterministic import choose_family_prime
from repro.core.selector import SlackWeightedSelector
from repro.graph.graph import Graph
from repro.graph.independent_set import turan_independent_set
from repro.hashing.partitions import PartitionFamily
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken


@dataclass
class ListRunStats:
    """Diagnostics: the Lemma 3.10 decay and pass/epoch counts."""

    passes: int = 0
    epochs: int = 0
    # (epoch, measured sum_x (|P_x ∩ L_x| - 1)) before each partition stage.
    list_mass_per_stage: list[tuple[int, int]] = field(default_factory=list)


class _EpochState:
    """Per-epoch PCC state: partition chains and the stage partitions."""

    def __init__(self, uncolored):
        self.members = sorted(uncolored)
        # chain[x] = tuple of chosen class indices, one per completed stage.
        self.chain = {x: () for x in self.members}
        # One color->class array per completed stage (shared by all x).
        self.partitions: list[np.ndarray] = []
        self.proposals: dict[int, int] = {}

    def contains(self, x: int, color: int) -> bool:
        """Whether ``color`` is in ``P_x`` (walk the chain)."""
        chain = self.chain[x]
        for arr, cls in zip(self.partitions, chain):
            if arr[color] != cls:
                return False
        return True

    def chains_equal(self, u: int, v: int) -> bool:
        return self.chain[u] == self.chain[v]


class DeterministicListColoring(MultipassStreamingAlgorithm):
    """Deterministic multipass (deg+1)-list-coloring (Theorem 2)."""

    def __init__(
        self,
        n: int,
        delta: int,
        color_universe_size: int,
        selection: str = "hash_family",
        prime_policy: str = "paper",
        prime=None,
        partition_levels: int = 4,
        instrument: bool = False,
        max_epochs=None,
    ):
        super().__init__()
        if selection not in ("hash_family", "greedy_slack"):
            raise ReproError(f"unknown selection mode {selection!r}")
        if color_universe_size < 1:
            raise ReproError("color universe must be non-empty")
        self.n = n
        self.delta = delta
        self.universe = color_universe_size
        # Colors are drawn from [1, universe]; per-vertex lists constrain
        # further, so validation goes through ``lists``, not this bound.
        self.palette_size = color_universe_size
        self.selection = selection
        self.prime_policy = prime_policy
        self.prime_override = prime
        self.partition_levels = partition_levels
        self.instrument = instrument
        if max_epochs is None:
            max_epochs = 4 * max(1, ceil_log2(max(2, delta + 1))) + 8
        self.max_epochs = max_epochs
        self.stats = ListRunStats()

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        n = self.n
        chi: dict[int, int] = {v: None for v in range(n)}
        uncolored = set(range(n))
        self.meter.set_gauge(
            "partial coloring", n * (ceil_log2(max(2, self.universe)) + 1)
        )
        if self.delta == 0:
            self._final_pass(stream, chi, uncolored)
            return chi
        epoch = 0
        while len(uncolored) * self.delta > n:
            epoch += 1
            if epoch > self.max_epochs:
                break
            self._run_epoch(stream, chi, uncolored, epoch)
        self._final_pass(stream, chi, uncolored)
        self.stats.passes = stream.passes_used
        self.stats.epochs = epoch
        return chi

    # ------------------------------------------------------------------
    # epoch
    # ------------------------------------------------------------------
    def _run_epoch(self, stream, chi, uncolored, epoch) -> None:
        n = self.n
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        s = 1 << k
        state = _EpochState(uncolored)
        self.meter.set_gauge(
            "pcc chains",
            len(state.members)
            * (2 * ceil_log2(max(2, self.delta + 1)) + ceil_log2(max(2, self.universe))),
        )
        max_partition_stages = ceil_div(2 * ceil_log2(self.delta + 1), k) + 2
        for stage in range(max_partition_stages):
            mass = self._list_mass(stream, chi, uncolored, state)
            if self.instrument:
                self.stats.list_mass_per_stage.append((epoch, mass))
            if mass <= len(state.members):
                break
            self._partition_stage(stream, chi, uncolored, state, s)
        self._final_stage(stream, chi, uncolored, state)
        self._commit(stream, chi, uncolored, state)
        self.meter.clear_gauge("pcc chains")

    # ------------------------------------------------------------------
    def _list_mass(self, stream, chi, uncolored, state) -> int:
        """One pass: the Lemma 3.10 decay quantity ``sum_x (|P_x ∩ L_x| - 1)``."""
        total = 0
        seen = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken) and token.x in uncolored:
                if token.x in seen:
                    continue
                seen.add(token.x)
                count = sum(1 for c in token.colors if state.contains(token.x, c))
                total += max(0, count - 1)
        return total

    # ------------------------------------------------------------------
    # partition stages
    # ------------------------------------------------------------------
    def _partition_stage(self, stream, chi, uncolored, state, s) -> None:
        family = PartitionFamily(self.universe, s)
        key = self._select_partition(stream, uncolored, state, family)
        partition_arr = self._materialize(family, key)
        # --- slack counter pass (both base and used, per class) ---
        members = state.members
        base = {x: np.zeros(s, dtype=np.int64) for x in members}
        used = {x: np.zeros(s, dtype=np.int64) for x in members}
        self.meter.set_gauge(
            "stage counters",
            len(members) * s * 2 * ceil_log2(max(2, self.delta + 2)),
        )
        seen_lists = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken):
                x = token.x
                if x in uncolored and x not in seen_lists:
                    seen_lists.add(x)
                    for c in token.colors:
                        if state.contains(x, c):
                            base[x][partition_arr[c]] += 1
            elif isinstance(token, EdgeToken):
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None and state.contains(x, color):
                            used[x][partition_arr[color]] += 1
        slacks = {x: np.maximum(0, base[x] - used[x]) for x in members}
        proposals = self._select_classes(stream, uncolored, state, slacks, s)
        for x in members:
            if slacks[x][proposals[x]] <= 0:
                raise ReproError(
                    f"list stage chose a zero-slack class for vertex {x}"
                )
            state.chain[x] = state.chain[x] + (proposals[x],)
        state.partitions.append(partition_arr)
        self.meter.clear_gauge("stage counters")

    def _select_partition(self, stream, uncolored, state, family):
        """The paper's 4-pass group minimization over the Lemma 3.10 family.

        Each pass computes ``sum_R sum_x a_R(P_x ∩ L_x)`` for each group of
        candidate partitions (computable online: ``a_R`` is evaluated the
        moment an ``(x, L_x)`` token arrives), keeps the best group, and
        splits it further; the last pass scores individual partitions.
        """
        candidates = list(family.members())
        levels = max(1, self.partition_levels)
        for level in range(levels):
            if len(candidates) == 1:
                break
            # Group count ~ |candidates|^(1/(levels - level)) so the last
            # level reaches singletons, mirroring |F|^{1/4} groups per pass.
            remaining = levels - level
            group_count = max(2, round(len(candidates) ** (1.0 / remaining)))
            group_size = ceil_div(len(candidates), group_count)
            groups = [
                candidates[i : i + group_size]
                for i in range(0, len(candidates), group_size)
            ]
            scores = self._score_partition_groups(stream, uncolored, state, family, groups)
            candidates = groups[int(np.argmin(scores))]
        if len(candidates) > 1:
            scores = self._score_partition_groups(
                stream, uncolored, state, family, [[key] for key in candidates]
            )
            return candidates[int(np.argmin(scores))]
        return candidates[0]

    def _score_partition_groups(self, stream, uncolored, state, family, groups):
        """One pass: ``sum over group members of sum_x a_R(P_x ∩ L_x)``."""
        self.meter.set_gauge(
            "partition accumulators", len(groups) * 2 * ceil_log2(max(2, self.n))
        )
        scores = np.zeros(len(groups))
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, ListToken) or token.x not in uncolored:
                continue
            x = token.x
            if x in seen:
                continue
            seen.add(x)
            survivors = [c for c in token.colors if state.contains(x, c)]
            if not survivors:
                continue
            for gi, group in enumerate(groups):
                for a, b in group:
                    counts = np.zeros(family.s, dtype=np.int64)
                    for c in survivors:
                        counts[family.class_of(a, b, c)] += 1
                    scores[gi] += max(0, int(counts.max()) - 1)
        self.meter.clear_gauge("partition accumulators")
        return scores

    def _materialize(self, family, key) -> np.ndarray:
        """Color -> class array for the chosen partition (index 1..universe)."""
        a, b = key
        arr = np.zeros(self.universe + 1, dtype=np.int64)
        for c in range(1, self.universe + 1):
            arr[c] = family.class_of(a, b, c)
        return arr

    def _select_classes(self, stream, uncolored, state, slacks, s):
        """Slack-weighted class choice: greedy or 3-pass hash-family search."""
        members = state.members
        if self.selection == "greedy_slack":
            return {x: int(np.argmax(slacks[x])) for x in members}
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=s)
        for x in members:
            selector.register_vertex(x, np.arange(s), slacks[x])
        self.meter.set_gauge("part accumulators", selector.accumulator_bits())
        conflict = self._conflict_edges(stream, uncolored, state)
        part = selector.part_sums(conflict)
        a_star = int(np.argmin(part)) if conflict else 0
        conflict = self._conflict_edges(stream, uncolored, state)
        member = selector.member_sums(a_star, conflict)
        b_star = int(np.argmin(member)) if conflict else 0
        self.meter.clear_gauge("part accumulators")
        return {x: selector.proposal_for(x, a_star, b_star) for x in members}

    def _conflict_edges(self, stream, uncolored, state):
        """One pass: edges inside U whose endpoints share the same chain."""
        edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and state.chains_equal(u, v):
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append(key)
        return edges

    # ------------------------------------------------------------------
    # final singleton stage
    # ------------------------------------------------------------------
    def _final_stage(self, stream, chi, uncolored, state) -> None:
        members = state.members
        # Recording pass: P_x ∩ L_x explicitly (<= 2|U| ids total after decay).
        candidates: dict[int, list[int]] = {x: [] for x in members}
        seen = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken) and token.x in uncolored:
                if token.x in seen:
                    continue
                seen.add(token.x)
                candidates[token.x] = sorted(
                    c for c in token.colors if state.contains(token.x, c)
                )
        total_ids = sum(len(v) for v in candidates.values())
        self.meter.set_gauge(
            "final-stage candidates", total_ids * ceil_log2(max(2, self.universe))
        )
        # Marking pass: drop colors used by already-colored neighbors.
        unavailable: dict[int, set[int]] = {x: set() for x in members}
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            for x, y in ((token.u, token.v), (token.v, token.u)):
                if x in uncolored:
                    color = chi.get(y)
                    if color is not None:
                        unavailable[x].add(color)
        avail = {
            x: [c for c in candidates[x] if c not in unavailable[x]]
            for x in members
        }
        for x in members:
            if not avail[x]:
                raise ReproError(
                    f"vertex {x} has no available color at the final stage; "
                    "slack invariant violated"
                )
        # Selection: candidates are the colors themselves (uniform slack).
        if self.selection == "greedy_slack":
            state.proposals = {x: avail[x][0] for x in members}
        else:
            p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
            selector = SlackWeightedSelector(p, self.n, cid_space=self.universe + 1)
            for x in members:
                selector.register_vertex(x, avail[x], [1] * len(avail[x]))
            conflict = self._conflict_edges(stream, uncolored, state)
            part = selector.part_sums(conflict)
            a_star = int(np.argmin(part)) if conflict else 0
            conflict = self._conflict_edges(stream, uncolored, state)
            member = selector.member_sums(a_star, conflict)
            b_star = int(np.argmin(member)) if conflict else 0
            state.proposals = {
                x: selector.proposal_for(x, a_star, b_star) for x in members
            }
        self.meter.clear_gauge("final-stage candidates")

    # ------------------------------------------------------------------
    def _commit(self, stream, chi, uncolored, state) -> None:
        """End-of-epoch: collect F, Turán-commit an independent set."""
        proposals = state.proposals
        conflict_edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and proposals[u] == proposals[v]:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    conflict_edges.append(key)
        members = state.members
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        for i in turan_independent_set(conflict_graph):
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)

    # ------------------------------------------------------------------
    def _final_pass(self, stream, chi, uncolored) -> None:
        """Collect edges incident to U plus U's lists; finish greedily."""
        adjacency: dict[int, set[int]] = {x: set() for x in uncolored}
        lists: dict[int, set[int]] = {}
        for token in stream.new_pass():
            if isinstance(token, ListToken):
                if token.x in uncolored and token.x not in lists:
                    lists[token.x] = set(token.colors)
            elif isinstance(token, EdgeToken):
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        adjacency[x].add(y)
        stored = sum(len(a) for a in adjacency.values())
        self.meter.set_gauge(
            "final edges+lists",
            stored * 2 * ceil_log2(max(2, self.n))
            + sum(len(l) for l in lists.values()) * ceil_log2(max(2, self.universe)),
        )
        for x in sorted(uncolored):
            if x not in lists:
                raise ReproError(f"stream never provided a list for vertex {x}")
            used_colors = {chi[y] for y in adjacency[x] if chi.get(y) is not None}
            free = sorted(lists[x] - used_colors)
            if not free:
                raise ReproError(f"no free list color for vertex {x}")
            chi[x] = free[0]
        uncolored.clear()
        self.meter.clear_gauge("final edges+lists")
