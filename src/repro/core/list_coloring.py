"""Theorem 2: deterministic semi-streaming (deg+1)-list-coloring.

The input stream interleaves edges of ``G`` with ``(x, L_x)`` tokens giving
each vertex's allowed colors (``|L_x| >= deg(x) + 1``) drawn from a color
universe ``C`` of size ``O(n^2)``.  Same bounds as Theorem 1:
``O(n log^2 n)`` bits, ``O(log Delta log log Delta)`` passes.

Differences from Algorithm 1 (Section 3.5):

1. **Adaptive partitions instead of bit subcubes.**  Because ``P_x ∩ L_x``
   cannot be evaluated arithmetically for arbitrary lists, each stage first
   *selects* a partition ``Q^{(i)}`` of the color universe from the
   Lemma 3.10 family ``F`` (built on 2-universal hashing), choosing one for
   which ``sum_x a_R(P_x ∩ L_x)`` is sub-average, where
   ``a_R(S) = max_class(|S ∩ class| - 1)``.  The selection uses the same
   multi-level group-minimization trick as the hash search (the paper uses
   four passes over ``|F|^{1/4}``-sized groups).  Lemma 3.10 then drives
   the decay ``sum_x (|P_x ∩ L_x| - 1) -> <= |U|`` within
   ``ceil(2 log(Delta+1)/k)`` stages; we additionally stop early once the
   (stream-measurable) quantity actually drops below ``|U|``.
2. **Class choice per vertex** still uses the slack-weighted,
   Carter-Wegman-derandomized selector — "the analysis to prove that the
   potential does not increase by much requires no adjustment".
3. **Final singleton stage.**  Once ``sum_x (|P_x ∩ L_x| - 1) <= |U|``, a
   recording pass stores each ``P_x ∩ L_x`` explicitly (``<= 2|U|`` color
   ids in total), a marking pass flags colors used by colored neighbors,
   and the selector (candidates = the surviving colors themselves, uniform
   slack) picks each vertex's proposal.

``P_x`` is represented by its *chain*: the per-stage class indices under
the globally chosen partitions — the paper's ``O(log n)``-bit encoding.

As with Algorithm 1, the block path executes on the resumable pass
machine of :mod:`repro.streaming.machine`: the epoch state (chains,
partitions, proposals), the partition-search candidates, the slack
counters, and the registered selector all live in ``self._mach`` between
passes, making runs snapshot/restorable at every pass boundary; the
token path below is the unchanged reference implementation.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2, floor_log2
from repro.core.deterministic import choose_family_prime
from repro.core.selector import SlackWeightedSelector
from repro.graph.coloring import coloring_array
from repro.graph.csr import dedupe_edges
from repro.graph.graph import Graph
from repro.graph.independent_set import turan_independent_set
from repro.hashing.partitions import PartitionFamily
from repro.kernels import dispatch
from repro.streaming.machine import PassConsumer, drive_blocks, require_machine
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken, ListToken


@dataclass
class ListRunStats:
    """Diagnostics: the Lemma 3.10 decay and pass/epoch counts."""

    passes: int = 0
    epochs: int = 0
    # (epoch, measured sum_x (|P_x ∩ L_x| - 1)) before each partition stage.
    list_mass_per_stage: list[tuple[int, int]] = field(default_factory=list)


class _EpochState:
    """Per-epoch PCC state: partition chains and the stage partitions."""

    def __init__(self, uncolored):
        self.members = sorted(uncolored)
        # chain[x] = tuple of chosen class indices, one per completed stage.
        self.chain = {x: () for x in self.members}
        # One color->class array per completed stage (shared by all x).
        self.partitions: list[np.ndarray] = []
        self.proposals: dict[int, int] = {}

    def contains(self, x: int, color: int) -> bool:
        """Whether ``color`` is in ``P_x`` (walk the chain)."""
        chain = self.chain[x]
        for arr, cls in zip(self.partitions, chain):
            if arr[color] != cls:
                return False
        return True

    def chains_equal(self, u: int, v: int) -> bool:
        return self.chain[u] == self.chain[v]


# ----------------------------------------------------------------------
# block-path pass consumers (vectorized twins of the token-path passes)
# ----------------------------------------------------------------------

class _ListMassConsumer(PassConsumer):
    """The Lemma 3.10 decay quantity ``sum_x (|P_x ∩ L_x| - 1)``."""

    def __init__(self, algo, uncolored, state):
        self.algo = algo
        self.uncolored = uncolored
        self.state = state
        self.seen: set = set()
        self.total = 0

    def feed(self, item) -> None:
        if not isinstance(item, ListToken):
            return
        x = item.x
        if x in self.uncolored and x not in self.seen:
            self.seen.add(x)
            colors = self.algo._token_colors(item)
            count = int(self.algo._contains_colors(self.state, x, colors).sum())
            self.total += max(0, count - 1)

    def finish(self, stream):
        return self.total


class _PartitionScoreConsumer(PassConsumer):
    """Group-scoring pass of the Lemma 3.10 partition search.

    All candidate members are scored at once against the family's
    precomputed class table: per list token, one occupancy bincount over
    ``(member, class)`` keys yields every member's ``a_R`` value, then a
    grouped sum.  Scores are integer-valued float sums, exactly as the
    token path accumulates them.
    """

    def __init__(self, algo, uncolored, state, family, groups):
        self.algo = algo
        self.uncolored = uncolored
        self.state = state
        self.s = family.s
        table = family.class_table()
        row_of = {key: i for i, key in enumerate(family.members())}
        cand_keys = [key for group in groups for key in group]
        self.rows = np.fromiter(
            (row_of[key] for key in cand_keys), dtype=np.int64,
            count=len(cand_keys),
        )
        self.group_ids = np.repeat(
            np.arange(len(groups)), [len(group) for group in groups]
        )
        self.sub_table = table[self.rows]  # (M, universe + 1)
        self.scores = np.zeros(len(groups))
        self.num_groups = len(groups)
        self.seen: set = set()

    def feed(self, item) -> None:
        if not isinstance(item, ListToken) or item.x not in self.uncolored:
            return
        x = item.x
        if x in self.seen:
            return
        self.seen.add(x)
        colors = self.algo._token_colors(item)
        survivors = colors[self.algo._contains_colors(self.state, x, colors)]
        if not len(survivors):
            return
        self.scores += dispatch(
            "partition_scores", self.sub_table, survivors,
            self.group_ids, self.num_groups, self.s,
        )

    def finish(self, stream):
        return self.scores


class _ListSlackConsumer(PassConsumer):
    """The slack counter pass (both base and used, per class).

    List tokens contribute to per-vertex ``base`` histograms via one
    masked ``np.add.at`` each; edge blocks accumulate ``used`` with a
    flat ``np.bincount`` over ``(vertex, class)`` keys, exactly as the
    deterministic algorithm's stage pass does.
    """

    def __init__(self, algo, chi, uncolored, state, partition_arr, s):
        self.algo = algo
        self.uncolored = uncolored
        self.state = state
        self.partition_arr = partition_arr
        self.s = s
        self.members = state.members
        member_mask, chain_matrix = algo._chain_arrays(state)
        self.member_mask = member_mask
        self.chain_matrix = chain_matrix
        self.chi_arr = coloring_array(algo.n, chi)
        self.base = {x: np.zeros(s, dtype=np.int64) for x in self.members}
        self.used_counts = np.zeros(algo.n * s, dtype=np.int64)
        self.seen_lists: set = set()

    def feed(self, item) -> None:
        s = self.s
        if isinstance(item, ListToken):
            x = item.x
            if x in self.uncolored and x not in self.seen_lists:
                self.seen_lists.add(x)
                colors = self.algo._token_colors(item)
                colors = colors[self.algo._contains_colors(self.state, x, colors)]
                np.add.at(self.base[x], self.partition_arr[colors], 1)
        elif isinstance(item, np.ndarray):
            for xs, ys in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
                cy = self.chi_arr[ys]
                sel = self.member_mask[xs] & (cy > 0)
                if not sel.any():
                    continue
                xs_s, cy_s = xs[sel], cy[sel]
                inside = self.algo._contains_pairs(
                    self.state, self.chain_matrix, xs_s, cy_s
                )
                if inside.any():
                    self.used_counts += np.bincount(
                        xs_s[inside] * s + self.partition_arr[cy_s[inside]],
                        minlength=self.algo.n * s,
                    )

    def finish(self, stream):
        used = self.used_counts.reshape(self.algo.n, self.s)
        return {
            x: np.maximum(0, self.base[x] - used[x]) for x in self.members
        }


class _ChainConflictConsumer(PassConsumer):
    """Edges inside U whose endpoints share the same chain.

    Returns the identical edge sequence as the token path — unique, in
    first-occurrence stream order — because the selector accumulates
    float potentials per edge and summation order matters for exact
    argmin ties.
    """

    def __init__(self, algo, state):
        self.algo = algo
        member_mask, chain_matrix = algo._chain_arrays(state)
        self.member_mask = member_mask
        self.chain_matrix = chain_matrix
        self.chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        u, v = item[:, 0], item[:, 1]
        sel = dispatch(
            "chain_conflict_mask", u, v, self.member_mask, self.chain_matrix
        )
        if sel.any():
            self.chunks.append(item[sel])

    def finish(self, stream):
        if not self.chunks:
            return np.empty((0, 2), dtype=np.int64)
        return dedupe_edges(self.algo.n, np.concatenate(self.chunks),
                            keep_order=True)


class _RecordConsumer(PassConsumer):
    """Final-stage recording pass: ``P_x ∩ L_x`` explicitly per vertex."""

    def __init__(self, algo, uncolored, state):
        self.algo = algo
        self.uncolored = uncolored
        self.state = state
        self.candidates: dict[int, list] = {x: [] for x in state.members}
        self.seen: set = set()

    def feed(self, item) -> None:
        if isinstance(item, ListToken) and item.x in self.uncolored:
            if item.x in self.seen:
                return
            self.seen.add(item.x)
            colors = self.algo._token_colors(item)
            inside = colors[
                self.algo._contains_colors(self.state, item.x, colors)
            ]
            self.candidates[item.x] = np.sort(inside).tolist()

    def finish(self, stream):
        return self.candidates


class _MarkingConsumer(PassConsumer):
    """Final-stage marking pass: colors used by already-colored neighbors."""

    def __init__(self, algo, chi, state):
        self.algo = algo
        member_mask, _ = algo._chain_arrays(state)
        self.member_mask = member_mask
        self.chi_arr = coloring_array(algo.n, chi)
        self.members = state.members
        self.key_chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        for xs, ys in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
            cy = self.chi_arr[ys]
            sel = self.member_mask[xs] & (cy > 0)
            if sel.any():
                self.key_chunks.append(
                    xs[sel] * (self.algo.universe + 1) + cy[sel]
                )

    def finish(self, stream):
        unavailable: dict[int, set[int]] = {x: set() for x in self.members}
        if self.key_chunks:
            keys = np.unique(np.concatenate(self.key_chunks))
            for x, color in zip(
                (keys // (self.algo.universe + 1)).tolist(),
                (keys % (self.algo.universe + 1)).tolist(),
            ):
                unavailable[x].add(color)
        return unavailable


class _ProposalConflictConsumer(PassConsumer):
    """End-of-epoch F pass: edges inside U with equal proposals."""

    def __init__(self, algo, state, proposals):
        self.algo = algo
        member_mask, _ = algo._chain_arrays(state)
        self.member_mask = member_mask
        prop = np.full(algo.n, -1, dtype=np.int64)
        for x, proposal in proposals.items():
            prop[x] = proposal
        self.prop = prop
        self.chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        u, v = item[:, 0], item[:, 1]
        sel = (
            self.member_mask[u]
            & self.member_mask[v]
            & (self.prop[u] == self.prop[v])
        )
        if sel.any():
            self.chunks.append(item[sel])

    def finish(self, stream):
        if not self.chunks:
            return np.empty((0, 2), dtype=np.int64)
        return dedupe_edges(self.algo.n, np.concatenate(self.chunks),
                            keep_order=True)


class _ListFinalConsumer(PassConsumer):
    """Final pass: edges incident to U plus U's list tokens."""

    def __init__(self, algo, uncolored):
        self.algo = algo
        self.uncolored = uncolored
        unc = np.zeros(algo.n, dtype=bool)
        if uncolored:
            unc[list(uncolored)] = True
        self.unc = unc
        self.lists: dict[int, set[int]] = {}
        self.pair_chunks: list = []

    def feed(self, item) -> None:
        if isinstance(item, ListToken):
            if item.x in self.uncolored and item.x not in self.lists:
                self.lists[item.x] = set(item.colors)
        elif isinstance(item, np.ndarray):
            keep = self.unc[item[:, 0]] | self.unc[item[:, 1]]
            if keep.any():
                self.pair_chunks.append(item[keep])

    def finish(self, stream):
        adjacency: dict[int, set[int]] = {x: set() for x in self.uncolored}
        if self.pair_chunks:
            from repro.streaming.blocks import group_pairs

            n, unc = self.algo.n, self.unc
            arr = np.concatenate(self.pair_chunks)
            fwd = arr[unc[arr[:, 0]]]
            rev = arr[unc[arr[:, 1]]][:, ::-1]
            pairs = np.concatenate([fwd, rev])
            keys = np.unique(pairs[:, 0] * n + pairs[:, 1])
            for x, ys in group_pairs(
                np.stack([keys // n, keys % n], axis=1)
            ):
                adjacency[x] = set(ys.tolist())
        return adjacency, self.lists


class DeterministicListColoring(MultipassStreamingAlgorithm):
    """Deterministic multipass (deg+1)-list-coloring (Theorem 2).

    Consumes either data-plane view.  Given a
    :class:`~repro.streaming.source.StreamSource` (edge blocks with
    ``ListToken`` items interleaved in place), every pass runs vectorized
    on the pass machine: list-token work is numpy per token (survivor
    masks over the chain's partition arrays), edge work is masked block
    arithmetic, and the Lemma 3.10 partition search scores whole
    candidate groups against the family's precomputed class table.  Both
    paths take the same passes, charge the same gauges, and produce the
    identical coloring.
    """

    supports_blocks = True
    supports_checkpoint = True

    def __init__(
        self,
        n: int,
        delta: int,
        color_universe_size: int,
        selection: str = "hash_family",
        prime_policy: str = "paper",
        prime=None,
        partition_levels: int = 4,
        instrument: bool = False,
        max_epochs=None,
    ):
        super().__init__()
        if selection not in ("hash_family", "greedy_slack"):
            raise ReproError(f"unknown selection mode {selection!r}")
        if color_universe_size < 1:
            raise ReproError("color universe must be non-empty")
        self.n = n
        self.delta = delta
        self.universe = color_universe_size
        # Colors are drawn from [1, universe]; per-vertex lists constrain
        # further, so validation goes through ``lists``, not this bound.
        self.palette_size = color_universe_size
        self.selection = selection
        self.prime_policy = prime_policy
        self.prime_override = prime
        self.partition_levels = partition_levels
        self.instrument = instrument
        if max_epochs is None:
            max_epochs = 4 * max(1, ceil_log2(max(2, delta + 1))) + 8
        self.max_epochs = max_epochs
        self.stats = ListRunStats()

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        n = self.n
        chi: dict[int, int] = {v: None for v in range(n)}
        uncolored = set(range(n))
        self.meter.set_gauge(
            "partial coloring", n * (ceil_log2(max(2, self.universe)) + 1)
        )
        if self.delta == 0:
            self._final_pass(stream, chi, uncolored)
            return chi
        epoch = 0
        while len(uncolored) * self.delta > n:
            epoch += 1
            if epoch > self.max_epochs:
                break
            self._run_epoch(stream, chi, uncolored, epoch)
        self._final_pass(stream, chi, uncolored)
        self.stats.passes = stream.passes_used
        self.stats.epochs = epoch
        return chi

    # ------------------------------------------------------------------
    # pass machine (block path)
    # ------------------------------------------------------------------
    def blocks_start(self) -> None:
        n = self.n
        chi: dict[int, int] = {v: None for v in range(n)}
        uncolored = set(range(n))
        self.meter.set_gauge(
            "partial coloring", n * (ceil_log2(max(2, self.universe)) + 1)
        )
        if self.delta == 0:
            # Token path returns before the epoch loop: stats stay unset.
            self._mach = {
                "phase": "final", "chi": chi, "uncolored": uncolored,
                "epoch": None,
            }
            return
        self._mach = {
            "phase": "epoch_check", "chi": chi, "uncolored": uncolored,
            "epoch": 0,
        }
        self._machine_advance()

    def blocks_consumer(self):
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "mass":
            return _ListMassConsumer(self, mach["uncolored"], mach["state"])
        if phase == "pscore":
            return _PartitionScoreConsumer(
                self, mach["uncolored"], mach["state"], mach["family"],
                mach["groups"],
            )
        if phase == "pslack":
            return _ListSlackConsumer(
                self, mach["chi"], mach["uncolored"], mach["state"],
                mach["partition_arr"], mach["s"],
            )
        if phase in ("pconf_a", "pconf_b", "fs_conf_a", "fs_conf_b"):
            return _ChainConflictConsumer(self, mach["state"])
        if phase == "fs_record":
            return _RecordConsumer(self, mach["uncolored"], mach["state"])
        if phase == "fs_mark":
            return _MarkingConsumer(self, mach["chi"], mach["state"])
        if phase == "commit":
            return _ProposalConflictConsumer(
                self, mach["state"], mach["state"].proposals
            )
        if phase == "final":
            return _ListFinalConsumer(self, mach["uncolored"])
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "mass":
            if self.instrument:
                self.stats.list_mass_per_stage.append((mach["epoch"], result))
            if result <= len(mach["state"].members):
                mach["phase"] = "fs_record"
            else:
                self._enter_partition_stage()
                self._machine_advance()
        elif phase == "pscore":
            self._deliver_partition_scores(result)
            self._machine_advance()
        elif phase == "pslack":
            self._deliver_slacks(result)
            self._machine_advance()
        elif phase == "pconf_a":
            selector = mach["selector"]
            mach["a_star"] = (
                int(np.argmin(selector.part_sums(result))) if len(result) else 0
            )
            mach["phase"] = "pconf_b"
        elif phase == "pconf_b":
            selector = mach["selector"]
            member = selector.member_sums(mach["a_star"], result)
            b_star = int(np.argmin(member)) if len(result) else 0
            proposals = {
                x: selector.proposal_for(x, mach["a_star"], b_star)
                for x in mach["state"].members
            }
            self.meter.clear_gauge("part accumulators")
            del mach["selector"]
            self._tighten_stage(proposals)
            self._machine_advance()
        elif phase == "fs_record":
            total_ids = sum(len(v) for v in result.values())
            self.meter.set_gauge(
                "final-stage candidates",
                total_ids * ceil_log2(max(2, self.universe)),
            )
            mach["fcand"] = result
            mach["phase"] = "fs_mark"
        elif phase == "fs_mark":
            self._deliver_marking(result)
        elif phase == "fs_conf_a":
            selector = mach["selector"]
            mach["a_star"] = (
                int(np.argmin(selector.part_sums(result))) if len(result) else 0
            )
            mach["phase"] = "fs_conf_b"
        elif phase == "fs_conf_b":
            selector = mach["selector"]
            member = selector.member_sums(mach["a_star"], result)
            b_star = int(np.argmin(member)) if len(result) else 0
            state = mach["state"]
            state.proposals = {
                x: selector.proposal_for(x, mach["a_star"], b_star)
                for x in state.members
            }
            del mach["selector"]
            self.meter.clear_gauge("final-stage candidates")
            mach["phase"] = "commit"
        elif phase == "commit":
            self._deliver_commit(result.tolist())
            self._machine_advance()
        elif phase == "final":
            self._deliver_final(result, stream)

    # -- machine transitions -------------------------------------------
    def _machine_advance(self) -> None:
        mach = self._mach
        while True:
            phase = mach["phase"]
            if phase == "epoch_check":
                if len(mach["uncolored"]) * self.delta > self.n:
                    mach["epoch"] += 1
                    if mach["epoch"] > self.max_epochs:
                        mach["phase"] = "final"
                        return
                    self._enter_epoch()
                    continue
                mach["phase"] = "final"
                return
            if phase == "mass_check":
                # The stage loop runs the mass pass before each of its
                # max_partition_stages iterations; once exhausted, the
                # final stage begins without another mass measurement.
                if mach["pstage"] < mach["max_partition_stages"]:
                    mach["phase"] = "mass"
                else:
                    mach["phase"] = "fs_record"
                return
            if phase == "psel_next":
                if self._partition_select_next():
                    return
                continue
            return

    def _enter_epoch(self) -> None:
        mach = self._mach
        n = self.n
        uncolored = mach["uncolored"]
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        state = _EpochState(uncolored)
        self.meter.set_gauge(
            "pcc chains",
            len(state.members)
            * (2 * ceil_log2(max(2, self.delta + 1))
               + ceil_log2(max(2, self.universe))),
        )
        mach["k"] = k
        mach["s"] = 1 << k
        mach["state"] = state
        mach["max_partition_stages"] = (
            ceil_div(2 * ceil_log2(self.delta + 1), k) + 2
        )
        mach["pstage"] = 0
        mach["phase"] = "mass_check"

    def _enter_partition_stage(self) -> None:
        """Begin the Lemma 3.10 family search for this stage's partition."""
        mach = self._mach
        family = PartitionFamily(self.universe, mach["s"])
        mach["family"] = family
        mach["candidates"] = list(family.members())
        mach["level"] = 0
        mach["final_select"] = False
        mach["phase"] = "psel_next"

    def _partition_select_next(self) -> bool:
        """Set up the next scoring pass; False once a partition is chosen."""
        mach = self._mach
        candidates = mach["candidates"]
        levels = max(1, self.partition_levels)
        if mach["level"] < levels and len(candidates) > 1:
            # Group count ~ |candidates|^(1/(levels - level)) so the last
            # level reaches singletons, mirroring |F|^{1/4} groups per pass.
            remaining = levels - mach["level"]
            group_count = max(2, round(len(candidates) ** (1.0 / remaining)))
            group_size = ceil_div(len(candidates), group_count)
            mach["groups"] = [
                candidates[i : i + group_size]
                for i in range(0, len(candidates), group_size)
            ]
        elif len(candidates) > 1:
            mach["groups"] = [[key] for key in candidates]
            mach["final_select"] = True
        else:
            self._enter_slack_pass(candidates[0])
            return True
        self.meter.set_gauge(
            "partition accumulators",
            len(mach["groups"]) * 2 * ceil_log2(max(2, self.n)),
        )
        mach["phase"] = "pscore"
        return True

    def _deliver_partition_scores(self, scores) -> None:
        mach = self._mach
        self.meter.clear_gauge("partition accumulators")
        if mach["final_select"]:
            key = mach["candidates"][int(np.argmin(scores))]
            del mach["groups"], mach["candidates"]
            self._enter_slack_pass(key)
            return
        mach["candidates"] = mach["groups"][int(np.argmin(scores))]
        mach["level"] += 1
        mach["phase"] = "psel_next"

    def _enter_slack_pass(self, key) -> None:
        mach = self._mach
        mach["partition_arr"] = self._materialize(mach["family"], key)
        del mach["family"]
        mach.pop("candidates", None)
        self.meter.set_gauge(
            "stage counters",
            len(mach["state"].members)
            * mach["s"] * 2 * ceil_log2(max(2, self.delta + 2)),
        )
        mach["phase"] = "pslack"

    def _deliver_slacks(self, slacks) -> None:
        """Class choice: greedy, or the 3-pass hash-family search."""
        mach = self._mach
        members = mach["state"].members
        mach["slacks"] = slacks
        if self.selection == "greedy_slack":
            self._tighten_stage({x: int(np.argmax(slacks[x])) for x in members})
            return
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=mach["s"])
        for x in members:
            selector.register_vertex(x, np.arange(mach["s"]), slacks[x])
        self.meter.set_gauge("part accumulators", selector.accumulator_bits())
        mach["selector"] = selector
        mach["phase"] = "pconf_a"

    def _tighten_stage(self, proposals) -> None:
        mach = self._mach
        state = mach["state"]
        slacks = mach.pop("slacks")
        for x in state.members:
            if slacks[x][proposals[x]] <= 0:
                raise ReproError(
                    f"list stage chose a zero-slack class for vertex {x}"
                )
            state.chain[x] = state.chain[x] + (proposals[x],)
        state.partitions.append(mach.pop("partition_arr"))
        self.meter.clear_gauge("stage counters")
        mach["pstage"] += 1
        mach["phase"] = "mass_check"

    def _deliver_marking(self, unavailable) -> None:
        """Final-stage selection from the surviving per-vertex colors."""
        mach = self._mach
        state = mach["state"]
        members = state.members
        candidates = mach.pop("fcand")
        avail = {
            x: [c for c in candidates[x] if c not in unavailable[x]]
            for x in members
        }
        for x in members:
            if not avail[x]:
                raise ReproError(
                    f"vertex {x} has no available color at the final stage; "
                    "slack invariant violated"
                )
        if self.selection == "greedy_slack":
            state.proposals = {x: avail[x][0] for x in members}
            self.meter.clear_gauge("final-stage candidates")
            mach["phase"] = "commit"
            return
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=self.universe + 1)
        for x in members:
            selector.register_vertex(x, avail[x], [1] * len(avail[x]))
        mach["selector"] = selector
        mach["phase"] = "fs_conf_a"

    def _deliver_commit(self, conflict_edges) -> None:
        """End-of-epoch: Turán-commit an independent set of (U, F)."""
        mach = self._mach
        state = mach["state"]
        chi, uncolored = mach["chi"], mach["uncolored"]
        proposals = state.proposals
        members = state.members
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        for i in turan_independent_set(conflict_graph):
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)
        self.meter.clear_gauge("pcc chains")
        del mach["state"]
        mach["phase"] = "epoch_check"

    def _deliver_final(self, result, stream) -> None:
        mach = self._mach
        adjacency, lists = result
        chi, uncolored = mach["chi"], mach["uncolored"]
        self._finish_greedy(chi, uncolored, adjacency, lists)
        if mach["epoch"] is not None:
            self.stats.passes = stream.passes_used
            self.stats.epochs = mach["epoch"]
        self._mach = {"phase": "done", "coloring": chi}

    # ------------------------------------------------------------------
    # block-path state snapshots (derived per pass; O(n) << O(m) scan cost)
    # ------------------------------------------------------------------
    def _chain_arrays(self, state):
        """``(member_mask, chain_matrix)`` arrays mirroring the PCC chains.

        ``chain_matrix[t, x]`` is vertex ``x``'s class at stage ``t``
        (-1 for non-members), so chain containment and chain equality
        become branch-free array comparisons.
        """
        n = self.n
        stages = len(state.partitions)
        member_mask = np.zeros(n, dtype=bool)
        if state.members:
            member_mask[state.members] = True
        chain_matrix = np.full((stages, n), -1, dtype=np.int64)
        for x in state.members:
            chain = state.chain[x]
            for t in range(stages):
                chain_matrix[t, x] = chain[t]
        return member_mask, chain_matrix

    def _contains_colors(self, state, x, colors: np.ndarray) -> np.ndarray:
        """Mask of ``colors`` inside ``P_x`` (vectorized chain walk)."""
        mask = np.ones(len(colors), dtype=bool)
        for arr, cls in zip(state.partitions, state.chain[x]):
            mask &= arr[colors] == cls
        return mask

    def _contains_pairs(self, state, chain_matrix, xs, colors) -> np.ndarray:
        """Mask where ``colors[i]`` lies in ``P_{xs[i]}``, elementwise."""
        if not state.partitions:
            return np.ones(len(xs), dtype=bool)
        part_stack = np.ascontiguousarray(
            np.stack(state.partitions), dtype=np.int64
        )
        return dispatch("contains_pairs", part_stack, chain_matrix, xs, colors)

    def _token_colors(self, token) -> np.ndarray:
        return np.fromiter(token.colors, dtype=np.int64, count=len(token.colors))

    # ------------------------------------------------------------------
    # epoch (token path)
    # ------------------------------------------------------------------
    def _run_epoch(self, stream, chi, uncolored, epoch) -> None:
        n = self.n
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        s = 1 << k
        state = _EpochState(uncolored)
        self.meter.set_gauge(
            "pcc chains",
            len(state.members)
            * (2 * ceil_log2(max(2, self.delta + 1)) + ceil_log2(max(2, self.universe))),
        )
        max_partition_stages = ceil_div(2 * ceil_log2(self.delta + 1), k) + 2
        for stage in range(max_partition_stages):
            mass = self._list_mass(stream, chi, uncolored, state)
            if self.instrument:
                self.stats.list_mass_per_stage.append((epoch, mass))
            if mass <= len(state.members):
                break
            self._partition_stage(stream, chi, uncolored, state, s)
        self._final_stage(stream, chi, uncolored, state)
        self._commit(stream, chi, uncolored, state)
        self.meter.clear_gauge("pcc chains")

    # ------------------------------------------------------------------
    def _list_mass(self, stream, chi, uncolored, state) -> int:
        """One pass: the Lemma 3.10 decay quantity ``sum_x (|P_x ∩ L_x| - 1)``."""
        total = 0
        seen = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken) and token.x in uncolored:
                if token.x in seen:
                    continue
                seen.add(token.x)
                count = sum(1 for c in token.colors if state.contains(token.x, c))
                total += max(0, count - 1)
        return total

    # ------------------------------------------------------------------
    # partition stages (token path)
    # ------------------------------------------------------------------
    def _partition_stage(self, stream, chi, uncolored, state, s) -> None:
        family = PartitionFamily(self.universe, s)
        key = self._select_partition(stream, uncolored, state, family)
        partition_arr = self._materialize(family, key)
        # --- slack counter pass (both base and used, per class) ---
        members = state.members
        self.meter.set_gauge(
            "stage counters",
            len(members) * s * 2 * ceil_log2(max(2, self.delta + 2)),
        )
        base = {x: np.zeros(s, dtype=np.int64) for x in members}
        used = {x: np.zeros(s, dtype=np.int64) for x in members}
        seen_lists = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken):
                x = token.x
                if x in uncolored and x not in seen_lists:
                    seen_lists.add(x)
                    for c in token.colors:
                        if state.contains(x, c):
                            base[x][partition_arr[c]] += 1
            elif isinstance(token, EdgeToken):
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None and state.contains(x, color):
                            used[x][partition_arr[color]] += 1
        slacks = {x: np.maximum(0, base[x] - used[x]) for x in members}
        proposals = self._select_classes(stream, uncolored, state, slacks, s)
        for x in members:
            if slacks[x][proposals[x]] <= 0:
                raise ReproError(
                    f"list stage chose a zero-slack class for vertex {x}"
                )
            state.chain[x] = state.chain[x] + (proposals[x],)
        state.partitions.append(partition_arr)
        self.meter.clear_gauge("stage counters")

    def _select_partition(self, stream, uncolored, state, family):
        """The paper's 4-pass group minimization over the Lemma 3.10 family.

        Each pass computes ``sum_R sum_x a_R(P_x ∩ L_x)`` for each group of
        candidate partitions (computable online: ``a_R`` is evaluated the
        moment an ``(x, L_x)`` token arrives), keeps the best group, and
        splits it further; the last pass scores individual partitions.
        """
        candidates = list(family.members())
        levels = max(1, self.partition_levels)
        for level in range(levels):
            if len(candidates) == 1:
                break
            # Group count ~ |candidates|^(1/(levels - level)) so the last
            # level reaches singletons, mirroring |F|^{1/4} groups per pass.
            remaining = levels - level
            group_count = max(2, round(len(candidates) ** (1.0 / remaining)))
            group_size = ceil_div(len(candidates), group_count)
            groups = [
                candidates[i : i + group_size]
                for i in range(0, len(candidates), group_size)
            ]
            scores = self._score_partition_groups(stream, uncolored, state, family, groups)
            candidates = groups[int(np.argmin(scores))]
        if len(candidates) > 1:
            scores = self._score_partition_groups(
                stream, uncolored, state, family, [[key] for key in candidates]
            )
            return candidates[int(np.argmin(scores))]
        return candidates[0]

    def _score_partition_groups(self, stream, uncolored, state, family, groups):
        """One pass: ``sum over group members of sum_x a_R(P_x ∩ L_x)``."""
        self.meter.set_gauge(
            "partition accumulators", len(groups) * 2 * ceil_log2(max(2, self.n))
        )
        scores = np.zeros(len(groups))
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, ListToken) or token.x not in uncolored:
                continue
            x = token.x
            if x in seen:
                continue
            seen.add(x)
            survivors = [c for c in token.colors if state.contains(x, c)]
            if not survivors:
                continue
            for gi, group in enumerate(groups):
                for a, b in group:
                    counts = np.zeros(family.s, dtype=np.int64)
                    for c in survivors:
                        counts[family.class_of(a, b, c)] += 1
                    scores[gi] += max(0, int(counts.max()) - 1)
        self.meter.clear_gauge("partition accumulators")
        return scores

    def _materialize(self, family, key) -> np.ndarray:
        """Color -> class array for the chosen partition (index 1..universe)."""
        return family.class_array(*key)

    def _select_classes(self, stream, uncolored, state, slacks, s):
        """Slack-weighted class choice: greedy or 3-pass hash-family search."""
        members = state.members
        if self.selection == "greedy_slack":
            return {x: int(np.argmax(slacks[x])) for x in members}
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=s)
        for x in members:
            selector.register_vertex(x, np.arange(s), slacks[x])
        self.meter.set_gauge("part accumulators", selector.accumulator_bits())
        conflict = self._conflict_edges(stream, uncolored, state)
        part = selector.part_sums(conflict)
        a_star = int(np.argmin(part)) if len(conflict) else 0
        conflict = self._conflict_edges(stream, uncolored, state)
        member = selector.member_sums(a_star, conflict)
        b_star = int(np.argmin(member)) if len(conflict) else 0
        self.meter.clear_gauge("part accumulators")
        return {x: selector.proposal_for(x, a_star, b_star) for x in members}

    def _conflict_edges(self, stream, uncolored, state):
        """One pass: edges inside U whose endpoints share the same chain."""
        edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and state.chains_equal(u, v):
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append(key)
        return edges

    # ------------------------------------------------------------------
    # final singleton stage (token path)
    # ------------------------------------------------------------------
    def _final_stage(self, stream, chi, uncolored, state) -> None:
        members = state.members
        # Recording pass: P_x ∩ L_x explicitly (<= 2|U| ids total after decay).
        candidates: dict[int, list[int]] = {x: [] for x in members}
        seen = set()
        for token in stream.new_pass():
            if isinstance(token, ListToken) and token.x in uncolored:
                if token.x in seen:
                    continue
                seen.add(token.x)
                candidates[token.x] = sorted(
                    c for c in token.colors if state.contains(token.x, c)
                )
        total_ids = sum(len(v) for v in candidates.values())
        self.meter.set_gauge(
            "final-stage candidates", total_ids * ceil_log2(max(2, self.universe))
        )
        # Marking pass: drop colors used by already-colored neighbors.
        unavailable: dict[int, set[int]] = {x: set() for x in members}
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            for x, y in ((token.u, token.v), (token.v, token.u)):
                if x in uncolored:
                    color = chi.get(y)
                    if color is not None:
                        unavailable[x].add(color)
        avail = {
            x: [c for c in candidates[x] if c not in unavailable[x]]
            for x in members
        }
        for x in members:
            if not avail[x]:
                raise ReproError(
                    f"vertex {x} has no available color at the final stage; "
                    "slack invariant violated"
                )
        # Selection: candidates are the colors themselves (uniform slack).
        if self.selection == "greedy_slack":
            state.proposals = {x: avail[x][0] for x in members}
        else:
            p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
            selector = SlackWeightedSelector(p, self.n, cid_space=self.universe + 1)
            for x in members:
                selector.register_vertex(x, avail[x], [1] * len(avail[x]))
            conflict = self._conflict_edges(stream, uncolored, state)
            part = selector.part_sums(conflict)
            a_star = int(np.argmin(part)) if len(conflict) else 0
            conflict = self._conflict_edges(stream, uncolored, state)
            member = selector.member_sums(a_star, conflict)
            b_star = int(np.argmin(member)) if len(conflict) else 0
            state.proposals = {
                x: selector.proposal_for(x, a_star, b_star) for x in members
            }
        self.meter.clear_gauge("final-stage candidates")

    # ------------------------------------------------------------------
    def _commit(self, stream, chi, uncolored, state) -> None:
        """End-of-epoch: collect F, Turán-commit an independent set."""
        proposals = state.proposals
        conflict_edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and proposals[u] == proposals[v]:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    conflict_edges.append(key)
        members = state.members
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        for i in turan_independent_set(conflict_graph):
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)

    # ------------------------------------------------------------------
    def _final_pass(self, stream, chi, uncolored) -> None:
        """Collect edges incident to U plus U's lists; finish greedily."""
        adjacency: dict[int, set[int]] = {x: set() for x in uncolored}
        lists: dict[int, set[int]] = {}
        for token in stream.new_pass():
            if isinstance(token, ListToken):
                if token.x in uncolored and token.x not in lists:
                    lists[token.x] = set(token.colors)
            elif isinstance(token, EdgeToken):
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        adjacency[x].add(y)
        self._finish_greedy(chi, uncolored, adjacency, lists)

    def _finish_greedy(self, chi, uncolored, adjacency, lists) -> None:
        """Shared final-pass epilogue: gauge the store, first-fit from lists."""
        stored = sum(len(a) for a in adjacency.values())
        self.meter.set_gauge(
            "final edges+lists",
            stored * 2 * ceil_log2(max(2, self.n))
            + sum(len(l) for l in lists.values()) * ceil_log2(max(2, self.universe)),
        )
        for x in sorted(uncolored):
            if x not in lists:
                raise ReproError(f"stream never provided a list for vertex {x}")
            used_colors = {chi[y] for y in adjacency[x] if chi.get(y) is not None}
            free = sorted(lists[x] - used_colors)
            if not free:
                raise ReproError(f"no free list color for vertex {x}")
            chi[x] = free[0]
        uncolored.clear()
        self.meter.clear_gauge("final edges+lists")
