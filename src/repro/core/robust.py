"""Algorithm 2: adversarially robust O(Delta^{5/2})-coloring (Theorem 3).

Single pass, adaptive adversary, ``~O(n)`` working space plus an
``O(n Delta)``-bit random oracle (the uniformly random coloring functions
``h_i`` and ``g_i``).  The ``beta`` parameter implements the Corollary 4.7
colors/space tradeoff: buffer ``n Delta^beta``, ``Delta^{1-beta}`` epochs,
``h``-range ``Delta^{2-2beta}``, fast threshold ``Delta^{(1+beta)/2}``,
``Delta^{(1-beta)/2}`` levels, ``g``-range ``Delta^{3(1-beta)/2}``, for
``O(Delta^{(5-3beta)/2})`` colors in ``O(n Delta^beta)`` space; ``beta=0``
is the base algorithm.

Terminology (Section 4.1): **buffer** B of the current epoch's edges;
**epoch** = which chunk the buffer is on; **level** of a vertex = ceil of
its degree over the fast threshold; **zone** fast/slow by buffer-degree;
**blocks** = color classes of ``h_curr`` (slow) and ``g_l`` (fast);
**sketches** ``A_i`` (``h_i``-monochromatic edges) and ``C_i``
(``g_i``-monochromatic edges).

Query: ``(degree+1)``-color each slow ``h_curr``-block on ``A_curr | B``,
``(degeneracy+1)``-color each fast ``g_l``-block on ``C_l | B``, fresh
palette per block (Lemma 4.6).

Indexing note (DESIGN.md, faithfulness discussion): the paper's prose and
pseudocode say the slow zone recolors on ``A_{curr-1} | B``, but its own
Lemma 4.6 proof uses ``A_curr | B`` ("the algorithm would have stored
{x,y} in A_curr"), and with the pseudocode's update rule (line 14: sketches
``i >= curr+1`` receive the edge) only ``A_curr | B`` covers the full
prefix: an edge from epoch ``curr-1`` is in ``A_curr`` but *not* in
``A_{curr-1}`` nor in ``B``.  Robustness is preserved because ``A_curr``
is frozen before ``h_curr`` is first revealed.  We implement
``A_curr | B``.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2, ceil_sqrt
from repro.graph.coloring import greedy_coloring
from repro.graph.degeneracy import degeneracy_coloring
from repro.graph.graph import Graph
from repro.hashing.random_oracle import RandomOracle
from repro.streaming.blocks import buffer_timeline, running_degrees
from repro.streaming.model import OnePassAlgorithm


@dataclass(frozen=True)
class RobustParameters:
    """The Corollary 4.7 parameterization, integer-rounded.

    All quantities are ``>= 1``; ``beta = 0`` reproduces Algorithm 2's
    base setting exactly (buffer ``n``, ``Delta`` epochs, ``h``-range
    ``Delta^2``, threshold/levels ``sqrt(Delta)``, ``g``-range
    ``Delta^{3/2}``).
    """

    n: int
    delta: int
    beta: float
    buffer_capacity: int
    num_epochs: int
    h_range: int
    fast_threshold: int
    num_levels: int
    g_range: int

    @classmethod
    def create(cls, n: int, delta: int, beta: float = 0.0) -> "RobustParameters":
        if not 0.0 <= beta <= 1.0:
            raise ReproError(f"beta must be in [0, 1], got {beta}")
        if delta < 1:
            raise ReproError(f"delta must be >= 1, got {delta}")

        def power(exponent: float) -> int:
            return max(1, round(delta**exponent))

        buffer_capacity = max(1, round(n * delta**beta))
        num_epochs = power(1.0 - beta)
        h_range = power(2.0 - 2.0 * beta)
        fast_threshold = power((1.0 + beta) / 2.0)
        num_levels = max(1, ceil_div(delta, fast_threshold))
        g_range = power(3.0 * (1.0 - beta) / 2.0)
        return cls(
            n=n,
            delta=delta,
            beta=beta,
            buffer_capacity=buffer_capacity,
            num_epochs=num_epochs,
            h_range=h_range,
            fast_threshold=fast_threshold,
            num_levels=num_levels,
            g_range=g_range,
        )

    @property
    def color_bound(self) -> float:
        """The claimed palette size ``O(Delta^{(5-3beta)/2})`` (shape only)."""
        return self.delta ** ((5.0 - 3.0 * self.beta) / 2.0)


class RobustColoring(OnePassAlgorithm):
    """Adversarially robust ``O(Delta^{5/2})``-coloring (Algorithm 2)."""

    supports_blocks = True
    # The stacked oracle tables are derived from _h/_g on first use;
    # snapshots carry the functions, not the stacks.
    _snapshot_skip_ = ("_h_table", "_g_table")

    def _snapshot_init_(self) -> None:
        self._h_table = None
        self._g_table = None

    def __init__(self, n: int, delta: int, seed: int, beta: float = 0.0):
        super().__init__()
        self.n = n
        self.delta = delta
        self.params = RobustParameters.create(n, delta, beta)
        p = self.params
        self._oracle = RandomOracle(seed)
        # h_1..h_E : V -> [h_range]; g_1..g_L : V -> [g_range].
        self._h = [
            self._oracle.function(f"h/{i}", n, p.h_range)
            for i in range(1, p.num_epochs + 1)
        ]
        self._g = [
            self._oracle.function(f"g/{i}", n, p.g_range)
            for i in range(1, p.num_levels + 1)
        ]
        self.meter.charge_random_bits(self._oracle.bits_served)
        self._degree = [0] * n
        self._buffer: list[tuple[int, int]] = []
        self._buffer_degree = [0] * n
        self._a_sets: list[list[tuple[int, int]]] = [[] for _ in range(p.num_epochs + 2)]
        self._c_sets: list[list[tuple[int, int]]] = [[] for _ in range(p.num_levels + 2)]
        self._curr = 1
        self._edges_seen = 0
        # Stacked oracle tables for the block path, built on first use.
        self._h_table = None
        self._g_table = None
        log_n = ceil_log2(max(2, n))

        self._edge_bits = 2 * log_n
        self._update_space()

    # ------------------------------------------------------------------
    def _update_space(self) -> None:
        p = self.params
        self.meter.set_gauge("buffer B", len(self._buffer) * self._edge_bits)
        self.meter.set_gauge(
            "A sketches", sum(len(a) for a in self._a_sets) * self._edge_bits
        )
        self.meter.set_gauge(
            "C sketches", sum(len(c) for c in self._c_sets) * self._edge_bits
        )
        self.meter.set_gauge(
            "degree counters", self.n * ceil_log2(max(2, self.delta + 1))
        )

    def _level_of_degree(self, d: int) -> int:
        """Level ``l`` such that degree is in ``((l-1) T, l T]`` (T = fast threshold)."""
        return max(1, ceil_div(d, self.params.fast_threshold))

    # ------------------------------------------------------------------
    def process(self, u: int, v: int) -> None:
        p = self.params
        if self._degree[u] >= self.delta or self._degree[v] >= self.delta:
            raise ReproError(
                f"edge ({u},{v}) exceeds the promised max degree {self.delta}"
            )
        # Lines 10-11: roll the buffer/epoch when full.
        if len(self._buffer) == p.buffer_capacity:
            self._buffer = []
            self._buffer_degree = [0] * self.n
            self._curr += 1
        self._buffer.append((u, v))
        self._buffer_degree[u] += 1
        self._buffer_degree[v] += 1
        # Line 13: degree counters.
        self._degree[u] += 1
        self._degree[v] += 1
        self._edges_seen += 1
        # Lines 14-15: h_i-sketches for future epochs.
        for i in range(self._curr + 1, p.num_epochs + 1):
            h = self._h[i - 1]
            if h(u) == h(v):
                self._a_sets[i].append((u, v))
        # Lines 16-17: g_i-sketches for levels above both endpoints.
        top = self._level_of_degree(max(self._degree[u], self._degree[v]))
        for i in range(top + 1, p.num_levels + 1):
            g = self._g[i - 1]
            if g(u) == g(v):
                self._c_sets[i].append((u, v))
        self._update_space()

    # ------------------------------------------------------------------
    def process_block(self, edges: np.ndarray) -> None:
        """Vectorized :meth:`process` over a ``(k, 2)`` block (bit-identical).

        The sequential bookkeeping is reconstructed in closed form: running
        degrees via a stable group-rank, buffer epochs via
        :func:`~repro.streaming.blocks.buffer_timeline`, and the rare
        monochromatic sketch events via one oracle-table gather per family.
        A block containing a degree-cap violation falls back to the scalar
        loop so the exception fires at the exact same edge with the exact
        same partial state.
        """
        p = self.params
        k = len(edges)
        if k == 0:
            return
        deg0 = np.asarray(self._degree, dtype=np.int64)
        deg_before = running_degrees(deg0, edges)
        if (deg_before >= self.delta).any():
            for u, v in edges.tolist():
                self.process(u, v)
            return
        rolls, lengths = buffer_timeline(len(self._buffer), p.buffer_capacity, k)
        curr_at = self._curr + rolls
        us, vs = edges[:, 0], edges[:, 1]
        stored_delta = np.zeros(k, dtype=np.int64)
        edges_list = edges.tolist()
        # Lines 14-15: h_i-monochromatic events for epochs > curr.
        if self._h_table is None:
            self._h_table = np.stack([h.table() for h in self._h])
            self._g_table = np.stack([g.table() for g in self._g])
        mono_h = (self._h_table[:, us] == self._h_table[:, vs]).T  # (k, E)
        ev_e, ev_i = np.nonzero(mono_h)
        for e, i in zip(ev_e.tolist(), ev_i.tolist()):
            epoch = i + 1
            if curr_at[e] + 1 <= epoch <= p.num_epochs:
                u, v = edges_list[e]
                self._a_sets[epoch].append((u, v))
                stored_delta[e] += 1
        # Lines 16-17: g_i-monochromatic events for levels above the edge.
        top = np.maximum(
            1,
            -(-(deg_before.max(axis=1) + 1) // p.fast_threshold),
        )
        mono_g = (self._g_table[:, us] == self._g_table[:, vs]).T  # (k, L)
        ev_e, ev_i = np.nonzero(mono_g)
        for e, i in zip(ev_e.tolist(), ev_i.tolist()):
            level = i + 1
            if top[e] + 1 <= level <= p.num_levels:
                u, v = edges_list[e]
                self._c_sets[level].append((u, v))
                stored_delta[e] += 1
        # Degree counters (line 13) and the buffer (lines 10-12).
        self._degree = (
            deg0 + np.bincount(edges.ravel(), minlength=self.n)
        ).tolist()
        if rolls[-1] > 0:
            tail = edges[k - int(lengths[-1]):]
            self._buffer = [tuple(e) for e in tail.tolist()]
            self._buffer_degree = np.bincount(
                tail.ravel(), minlength=self.n
            ).tolist()
        else:
            self._buffer.extend(tuple(e) for e in edges_list)
            self._buffer_degree = (
                np.asarray(self._buffer_degree, dtype=np.int64)
                + np.bincount(edges.ravel(), minlength=self.n)
            ).tolist()
        self._curr += int(rolls[-1])
        self._edges_seen += k
        # Space peak: the scalar path updates gauges after every edge.
        stored0 = sum(len(a) for a in self._a_sets) + sum(
            len(c) for c in self._c_sets
        ) - int(stored_delta.sum())
        per_edge_total = (
            stored0 + np.cumsum(stored_delta) + lengths
        ) * self._edge_bits
        base = (
            self.meter.current_bits
            - self.meter.gauge("buffer B")
            - self.meter.gauge("A sketches")
            - self.meter.gauge("C sketches")
        )
        self.meter.observe_peak(base + int(per_edge_total.max()))
        # Zero the varying gauges before the final update: setting one
        # gauge to its new value while another still holds the pre-block
        # value would register a transient total the scalar path never
        # reaches.
        self.meter.set_gauge("buffer B", 0)
        self.meter.set_gauge("A sketches", 0)
        self.meter.set_gauge("C sketches", 0)
        self._update_space()

    # ------------------------------------------------------------------
    def query(self) -> dict[int, int]:
        """Lines 18-27: recolor slow blocks and fast blocks with fresh palettes."""
        p = self.params
        coloring: dict[int, int] = {}
        next_free_color = 1
        fast = {
            v
            for v in range(self.n)
            if self._buffer_degree[v] > p.fast_threshold
        }
        slow = [v for v in range(self.n) if v not in fast]
        # --- slow zone: h_curr blocks on A_curr | B (see module docstring) ---
        h_curr = self._h[min(self._curr, p.num_epochs) - 1]
        a_curr = (
            self._a_sets[self._curr] if self._curr <= p.num_epochs else []
        )
        slow_blocks: dict[int, list[int]] = {}
        block_of: dict[int, int] = {}
        for v in slow:
            c = h_curr(v)
            slow_blocks.setdefault(c, []).append(v)
            block_of[v] = c
        # One sweep buckets the pool's intra-block edges by block.
        block_edges: dict[int, list[tuple[int, int]]] = {c: [] for c in slow_blocks}
        for u, v in a_curr + self._buffer:
            bu = block_of.get(u)
            if bu is not None and bu == block_of.get(v):
                block_edges[bu].append((u, v))
        for c, block in sorted(slow_blocks.items()):
            sub, index = self._induced(block, block_edges[c])
            local = greedy_coloring(sub)
            for original, local_id in index.items():
                coloring[original] = next_free_color + local[local_id] - 1
            next_free_color += max(local.values(), default=0)
        # --- fast zone: g_l blocks per level on C_l | B ---
        for level in range(1, p.num_levels + 1):
            g_l = self._g[level - 1]
            members = [
                v
                for v in fast
                if self._level_of_degree(self._degree[v]) == level
            ]
            if not members:
                continue
            fast_blocks: dict[int, list[int]] = {}
            fast_block_of: dict[int, int] = {}
            for v in members:
                c = g_l(v)
                fast_blocks.setdefault(c, []).append(v)
                fast_block_of[v] = c
            level_edges: dict[int, list[tuple[int, int]]] = {
                c: [] for c in fast_blocks
            }
            for u, v in self._c_sets[level] + self._buffer:
                bu = fast_block_of.get(u)
                if bu is not None and bu == fast_block_of.get(v):
                    level_edges[bu].append((u, v))
            for c, block in sorted(fast_blocks.items()):
                sub, index = self._induced(block, level_edges[c])
                local = degeneracy_coloring(sub)
                for original, local_id in index.items():
                    coloring[original] = next_free_color + local[local_id] - 1
                next_free_color += max(local.values(), default=0)
        return coloring

    # ------------------------------------------------------------------
    def _induced(self, block, edge_pool):
        """Subgraph induced by ``block`` on the given edge multiset."""
        index = {v: i for i, v in enumerate(sorted(block))}
        sub = Graph(len(index))  # repro: noqa[R3] sketch contents, not the stream
        for u, v in edge_pool:
            iu = index.get(u)
            iv = index.get(v)
            if iu is not None and iv is not None and not sub.has_edge(iu, iv):
                sub.add_edge(iu, iv)
        return sub, index

    # ------------------------------------------------------------------
    @property
    def sketch_edge_count(self) -> int:
        """Total edges currently stored across all sketches (A2 ablation)."""
        return sum(len(a) for a in self._a_sets) + sum(len(c) for c in self._c_sets)
