"""Algorithm 1: deterministic multipass semi-streaming (Delta+1)-coloring.

Theorem 1: ``O(n log^2 n)`` bits of space, ``O(log Delta * log log Delta)``
passes, palette exactly ``[Delta + 1]``.

Structure (Section 3.1-3.3):

- **Epochs** (``COLORING-EPOCH``): start from the current proper partial
  coloring ``(U, chi)`` with the trivial PCC ``P_x = {0,1}^b``; each epoch
  colors at least a third of ``U`` (Lemma 3.8) and epochs stop once
  ``|U| <= n / Delta``.
- **Stages** within an epoch: fix the next ``k = 1 + floor(log(n/|U|))``
  bits of every ``P_x``, choosing each vertex's bit pattern via the
  slack-weighted, hash-family-derandomized selection of
  :mod:`repro.core.selector` (3 streaming passes per stage: slack counters,
  part sums, member sums).
- **End of epoch**: each ``P_x`` is a singleton proposal; one pass collects
  the would-be-monochromatic edges ``F`` (Lemma 3.7: ``|F| <= |U|``), and
  the constructive Turán lemma commits the proposals on an independent set
  of ``(U, F)``.
- **Final pass** (line 6): once ``|U| <= n/Delta``, store every edge
  incident to ``U`` (at most ``|U| * Delta <= n``) and finish greedily.

``selection="greedy_slack"`` swaps the family search for the max-slack
heuristic (1 pass per stage, no Lemma 3.5 guarantee) — see DESIGN.md,
faithfulness note 1.

The block path runs on the resumable pass machine of
:mod:`repro.streaming.machine`: every cross-pass quantity — the partial
coloring, the uncolored set, the subcube PCCs, per-stage slack counters,
the registered selector, the committed proposals — lives in ``self._mach``
between passes (and is therefore snapshot-complete for
``repro.persist``); the intra-pass accumulators live in the three
consumer classes below, rebuilt by deterministic replay on restore.  The
token path is the unchanged reference implementation; the two are locked
together by the block-equivalence suite.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import (
    ceil_log2,
    floor_log2,
    next_prime,
    prime_in_range,
)
from repro.core.selector import SlackWeightedSelector
from repro.core.subcube import Subcube
from repro.graph.graph import Graph
from repro.graph.independent_set import turan_independent_set
from repro.kernels import dispatch
from repro.streaming.machine import PassConsumer, drive_blocks, require_machine
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken
from repro.obs.clock import perf_now


# Pending-key budget for the block slack pass: flushing the (vertex,
# pattern) batch into the histogram at this size keeps peak memory bounded
# by the batch while amortizing the O(n*s) bincount over many blocks.
_FLUSH_KEYS = 1 << 20


@dataclass
class StageStats:
    """Instrumentation for one stage (used by experiments F1/A1)."""

    epoch: int
    stage: int
    k: int
    potential_before: float
    potential_after: float
    uncolored: int


@dataclass
class EpochStats:
    """Instrumentation for one epoch (experiment F2)."""

    epoch: int
    uncolored_before: int
    uncolored_after: int
    conflict_edges: int
    stages: int


@dataclass
class RunStats:
    """Aggregate run diagnostics."""

    passes: int = 0
    epochs: int = 0
    stage_stats: list[StageStats] = field(default_factory=list)
    epoch_stats: list[EpochStats] = field(default_factory=list)


def choose_family_prime(n: int, policy: str, override=None) -> int:
    """The Carter-Wegman prime for the stage selector.

    ``policy="paper"`` takes a prime in ``[8 n log n, 16 n log n]``
    (Algorithm 1, line 16); ``policy="scaled"`` takes the first prime
    ``>= max(2n+1, 17)``, trading the Lemma 3.2 approximation constant for
    speed on larger inputs (DESIGN.md, note 1).
    """
    if override is not None:
        return next_prime(override)
    log_n = max(1, ceil_log2(max(2, n)))
    if policy == "paper":
        return prime_in_range(8 * n * log_n, 16 * n * log_n)
    if policy == "scaled":
        return next_prime(max(2 * n + 1, 17))
    raise ReproError(f"unknown prime policy {policy!r}")


class _SlackPassConsumer(PassConsumer):
    """Stage pass 1 over edge blocks: ``np.bincount`` instead of per-token dicts.

    Within an epoch every uncolored vertex's subcube shares ``(b, fixed)``
    and differs only in ``value``, so membership and ``pattern_of`` reduce
    to branch-free bit arithmetic on arrays.  Flat ``(vertex, pattern)``
    keys are batched and flushed into the histogram at ``_FLUSH_KEYS``:
    O(m + n*s*flushes) work with peak memory bounded by the batch, not the
    stream length, so the O(chunk_size)-memory promise of lazy sources
    survives this pass.
    """

    def __init__(self, algo, chi, uncolored, cubes, kk, members):
        self.algo = algo
        self.members = members
        self.kk = kk
        self.s = 1 << kk
        self.fixed = cubes[members[0]].fixed
        chi_arr, unc, cube_value = algo._state_arrays(chi, uncolored, cubes)
        self.chi_arr = chi_arr
        self.unc = unc
        self.cube_value = cube_value
        self.low_mask = (1 << self.fixed) - 1
        self.counts = np.zeros(algo.n * self.s, dtype=np.int64)
        self.key_chunks: list = []
        self.pending = 0

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        s = self.s
        for x, y in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
            keys = dispatch(
                "det_slack_keys", x, y, self.chi_arr, self.unc,
                self.cube_value, self.low_mask, self.fixed, s,
            )
            if not len(keys):
                continue
            self.key_chunks.append(keys)
            self.pending += len(keys)
            if self.pending >= _FLUSH_KEYS:
                self.counts += np.bincount(
                    np.concatenate(self.key_chunks), minlength=len(self.counts)
                )
                self.key_chunks.clear()
                self.pending = 0

    def finish(self, stream):
        # The deferred histogram replaces counting work the token path does
        # inside its (timed) loop; charge it to the pass it belongs to.
        n, delta = self.algo.n, self.algo.delta
        s, kk, fixed = self.s, self.kk, self.fixed
        reduce_start = perf_now()
        if self.key_chunks:
            self.counts += np.bincount(
                np.concatenate(self.key_chunks), minlength=n * s
            )
        stream.pass_seconds[-1] += perf_now() - reduce_start
        used = self.counts.reshape(n, s)[self.members]
        # base[i, j] = |restrict(j, kk) ∩ [1, delta+1]| in closed form.
        hi = delta + 1
        step = 1 << (fixed + kk)
        values = self.cube_value[self.members][:, None] | (
            np.arange(s, dtype=np.int64)[None, :] << fixed
        )
        base = np.where(values >= hi, 0, (hi - 1 - values) // step + 1)
        slack_matrix = np.maximum(0, base - used)
        return {x: slack_matrix[i] for i, x in enumerate(self.members)}


class _ConflictEdgesConsumer(PassConsumer):
    """Block twin of :meth:`DeterministicColoring._collect_conflict_edges`.

    Returns the identical conflict-edge sequence as a ``(k, 2)`` array:
    unique and in first-occurrence stream order, matching the token
    path's list exactly.  Order matters — the selector accumulates
    float potentials per edge, and near-ties under a different
    summation order could flip the argmin.
    """

    def __init__(self, algo, uncolored, cubes):
        self.algo = algo
        _, unc, cube_value = algo._state_arrays({}, uncolored, cubes)
        self.unc = unc
        self.cube_value = cube_value
        self.chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        u, v = item[:, 0], item[:, 1]
        sel = dispatch("det_conflict_mask", u, v, self.unc, self.cube_value)
        if sel.any():
            self.chunks.append(item[sel])

    def finish(self, stream):
        from repro.graph.csr import dedupe_edges

        if not self.chunks:
            return np.empty((0, 2), dtype=np.int64)
        # Deferred dedup mirrors the token path's (timed) in-loop seen-set.
        reduce_start = perf_now()
        edges = dedupe_edges(
            self.algo.n, np.concatenate(self.chunks), keep_order=True
        )
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return edges


class _FinalAdjacencyConsumer(PassConsumer):
    """Block twin of the final-pass edge collection.

    Gathers the unique directed pairs ``(x, y)`` with ``x`` uncolored
    (exactly what the token path's per-vertex sets hold), then groups
    them into adjacency lists with one sort.
    """

    def __init__(self, algo, uncolored):
        self.algo = algo
        self.uncolored = uncolored
        _, unc = algo._state_arrays({}, uncolored)
        self.unc = unc
        self.chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        keep = self.unc[item[:, 0]] | self.unc[item[:, 1]]
        if keep.any():
            self.chunks.append(item[keep])

    def finish(self, stream):
        adjacency: dict[int, list] = {x: [] for x in self.uncolored}
        if not self.chunks:
            return adjacency, 0
        # Deferred grouping mirrors the token path's (timed) in-loop
        # adjacency-set building.
        from repro.streaming.blocks import group_pairs

        n, unc = self.algo.n, self.unc
        reduce_start = perf_now()
        arr = np.concatenate(self.chunks)
        fwd = arr[unc[arr[:, 0]]]
        rev = arr[unc[arr[:, 1]]][:, ::-1]
        pairs = np.concatenate([fwd, rev])
        keys = np.unique(pairs[:, 0] * n + pairs[:, 1])
        for x, ys in group_pairs(np.stack([keys // n, keys % n], axis=1)):
            adjacency[x] = ys.tolist()
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return adjacency, len(keys)


class DeterministicColoring(MultipassStreamingAlgorithm):
    """Deterministic multipass ``(Delta+1)``-coloring (Theorem 1).

    Consumes either data-plane view.  Given a :class:`TokenStream`, every
    pass is the original token-at-a-time loop; given a
    :class:`~repro.streaming.source.StreamSource`, the run executes on the
    pass machine with the counting passes (slack counters, conflict-edge
    collection, the end-of-epoch F pass, and the final stored-edges pass)
    vectorized over ``(k, 2)`` edge blocks.  Both paths take the same
    passes, charge the same :class:`SpaceMeter` gauges, and produce the
    identical coloring (locked by the block-equivalence test suite).
    """

    supports_blocks = True
    supports_checkpoint = True

    def __init__(
        self,
        n: int,
        delta: int,
        selection: str = "hash_family",
        prime_policy: str = "paper",
        prime=None,
        instrument: bool = False,
        max_epochs=None,
    ):
        super().__init__()
        if selection not in ("hash_family", "greedy_slack"):
            raise ReproError(f"unknown selection mode {selection!r}")
        self.n = n
        self.delta = delta
        self.selection = selection
        self.prime_policy = prime_policy
        self.prime_override = prime
        self.instrument = instrument
        # Guard against non-convergence in heuristic mode; the paper bound
        # is ceil(log_{3/2} Delta) epochs (Lemma 3.8).
        if max_epochs is None:
            max_epochs = 4 * max(1, ceil_log2(max(2, delta))) + 8
        self.max_epochs = max_epochs
        self.stats = RunStats()
        self.palette_size = delta + 1

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        n, delta = self.n, self.delta
        chi: dict[int, int] = {v: None for v in range(n)}
        if delta == 0:
            for v in range(n):
                chi[v] = 1
            return chi
        uncolored = set(range(n))
        self.meter.set_gauge("partial coloring", n * (ceil_log2(delta + 2) + 1))
        epoch = 0
        while len(uncolored) * delta > n:
            epoch += 1
            if epoch > self.max_epochs:
                break  # heuristic mode may stall; the final pass still finishes
            self._run_epoch(stream, chi, uncolored, epoch)
        self._final_pass(stream, chi, uncolored)
        self.stats.passes = stream.passes_used
        self.stats.epochs = epoch
        return chi

    # ------------------------------------------------------------------
    # pass machine (block path)
    # ------------------------------------------------------------------
    def blocks_start(self) -> None:
        n, delta = self.n, self.delta
        chi: dict[int, int] = {v: None for v in range(n)}
        if delta == 0:
            for v in range(n):
                chi[v] = 1
            self._mach = {"phase": "done", "coloring": chi}
            return
        uncolored = set(range(n))
        self.meter.set_gauge("partial coloring", n * (ceil_log2(delta + 2) + 1))
        self._mach = {
            "phase": "epoch_check",
            "chi": chi,
            "uncolored": uncolored,
            "epoch": 0,
        }
        self._machine_advance()

    def blocks_consumer(self):
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "stage_slacks":
            return _SlackPassConsumer(
                self, mach["chi"], mach["uncolored"], mach["cubes"],
                mach["kk"], mach["members"],
            )
        if phase in ("stage_parts", "stage_members", "epoch_f"):
            return _ConflictEdgesConsumer(self, mach["uncolored"], mach["cubes"])
        if phase == "final":
            return _FinalAdjacencyConsumer(self, mach["uncolored"])
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "stage_slacks":
            self._deliver_slacks(result, stream)
        elif phase == "stage_parts":
            selector = mach["selector"]
            mach["a_star"] = (
                int(np.argmin(selector.part_sums(result))) if len(result) else 0
            )
            mach["phase"] = "stage_members"
        elif phase == "stage_members":
            selector = mach["selector"]
            member = selector.member_sums(mach["a_star"], result)
            b_star = int(np.argmin(member)) if len(result) else 0
            proposals = {
                x: selector.proposal_for(x, mach["a_star"], b_star)
                for x in mach["members"]
            }
            self.meter.clear_gauge("part accumulators")
            del mach["selector"]
            self._tighten_stage(proposals, stream)
            self._machine_advance()
        elif phase == "epoch_f":
            self._deliver_epoch_f(result)
            self._machine_advance()
        elif phase == "final":
            self._deliver_final(result, stream)

    # -- machine transitions -------------------------------------------
    def _machine_advance(self) -> None:
        """Advance through compute-only phases until a pass is needed."""
        mach = self._mach
        while True:
            phase = mach["phase"]
            if phase == "epoch_check":
                if len(mach["uncolored"]) * self.delta > self.n:
                    mach["epoch"] += 1
                    if mach["epoch"] > self.max_epochs:
                        # heuristic mode may stall; the final pass finishes
                        mach["phase"] = "final"
                        return
                    self._enter_epoch()
                    continue
                mach["phase"] = "final"
                return
            if phase == "stage_check":
                if mach["fixed"] < mach["b"]:
                    self._enter_stage()
                else:
                    self._enter_epoch_f()
                return
            return

    def _enter_epoch(self) -> None:
        """COLORING-EPOCH prologue: trivial PCCs, epoch gauges."""
        mach = self._mach
        n, delta = self.n, self.delta
        uncolored = mach["uncolored"]
        b = ceil_log2(delta + 1)
        mach["b"] = b
        mach["k"] = 1 + floor_log2(max(1, n // len(uncolored)))
        mach["cubes"] = {x: Subcube.full(b) for x in uncolored}
        self.meter.set_gauge(
            "pcc", len(uncolored) * (b + ceil_log2(max(2, b)) + 1)
        )
        mach["u_before"] = len(uncolored)
        mach["fixed"] = 0
        mach["stage_index"] = 0
        mach["phase"] = "stage_check"

    def _enter_stage(self) -> None:
        """Stage prologue (lines 12-14): counters gauge, next-k bookkeeping."""
        mach = self._mach
        mach["stage_index"] += 1
        kk = min(mach["k"], mach["b"] - mach["fixed"])
        mach["kk"] = kk
        members = sorted(mach["uncolored"])
        mach["members"] = members
        self.meter.set_gauge(
            "stage counters",
            len(members) * (1 << kk) * ceil_log2(max(2, self.delta + 2)),
        )
        mach["phase"] = "stage_slacks"

    def _enter_epoch_f(self) -> None:
        """End-of-epoch: cubes are singletons; their colors are the proposals."""
        mach = self._mach
        cubes = mach["cubes"]
        mach["proposals"] = {
            x: cubes[x].sole_color for x in mach["uncolored"]
        }
        mach["phase"] = "epoch_f"

    def _deliver_slacks(self, slacks, stream) -> None:
        """Post slack pass: selection (greedy, or begin the family search)."""
        mach = self._mach
        mach["potential_before"] = None
        if self.instrument:
            mach["potential_before"] = self._measure_potential(
                stream, mach["chi"], mach["uncolored"], mach["cubes"], slacks=None
            )
        if self.selection == "greedy_slack":
            proposals = {x: int(np.argmax(slacks[x])) for x in mach["members"]}
            mach["slacks"] = slacks
            self._tighten_stage(proposals, stream)
            self._machine_advance()
            return
        p = choose_family_prime(self.n, self.prime_policy, self.prime_override)
        selector = SlackWeightedSelector(p, self.n, cid_space=1 << mach["kk"])
        for x in mach["members"]:
            selector.register_vertex(x, np.arange(1 << mach["kk"]), slacks[x])
        self.meter.set_gauge("part accumulators", selector.accumulator_bits())
        mach["selector"] = selector
        mach["slacks"] = slacks
        mach["phase"] = "stage_parts"

    def _tighten_stage(self, proposals, stream) -> None:
        """Line 27: fix the chosen pattern of every PCC, close the stage."""
        mach = self._mach
        slacks = mach.pop("slacks")
        cubes = mach["cubes"]
        kk = mach["kk"]
        for x in mach["members"]:
            j = proposals[x]
            if slacks[x][j] <= 0:
                raise ReproError(
                    f"stage selected a zero-slack pattern for vertex {x}; "
                    "Lemma 3.6 invariant violated"
                )
            cubes[x] = cubes[x].restrict(j, kk)
        self.meter.clear_gauge("stage counters")
        if self.instrument:
            potential_after = self._measure_potential(
                stream, mach["chi"], mach["uncolored"], cubes, slacks=None
            )
            self.stats.stage_stats.append(
                StageStats(
                    epoch=mach["epoch"],
                    stage=mach["stage_index"],
                    k=kk,
                    potential_before=mach["potential_before"],
                    potential_after=potential_after,
                    uncolored=len(mach["uncolored"]),
                )
            )
        mach["fixed"] += kk
        mach["phase"] = "stage_check"

    def _deliver_epoch_f(self, conflict_edges) -> None:
        """Lines 29-33: gauge F, commit proposals on a Turán independent set."""
        mach = self._mach
        n = self.n
        chi, uncolored = mach["chi"], mach["uncolored"]
        proposals = mach.pop("proposals")
        self.meter.set_gauge(
            "epoch conflict edges F",
            len(conflict_edges) * 2 * ceil_log2(max(2, n)),
        )
        members = sorted(uncolored)
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        independent = turan_independent_set(conflict_graph)
        for i in independent:
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)
        self.meter.clear_gauge("epoch conflict edges F")
        self.meter.clear_gauge("pcc")
        if self.instrument:
            self.stats.epoch_stats.append(
                EpochStats(
                    epoch=mach["epoch"],
                    uncolored_before=mach["u_before"],
                    uncolored_after=len(uncolored),
                    conflict_edges=len(conflict_edges),
                    stages=mach["stage_index"],
                )
            )
        mach["phase"] = "epoch_check"

    def _deliver_final(self, result, stream) -> None:
        """Line 6-7 epilogue: greedy-finish U from its stored adjacency."""
        mach = self._mach
        adjacency, stored = result
        chi, uncolored = mach["chi"], mach["uncolored"]
        self._finish_greedy(chi, uncolored, adjacency, stored)
        self.stats.passes = stream.passes_used
        self.stats.epochs = mach["epoch"]
        self._mach = {"phase": "done", "coloring": chi}

    # ------------------------------------------------------------------
    # block-path state snapshots (derived per pass; O(n) << O(m) scan cost)
    # ------------------------------------------------------------------
    def _state_arrays(self, chi, uncolored, cubes=None):
        from repro.graph.coloring import coloring_array

        n = self.n
        chi_arr = coloring_array(n, chi)  # 0 encodes "uncolored"
        unc = np.zeros(n, dtype=bool)
        if uncolored:
            unc[list(uncolored)] = True
        if cubes is None:
            return chi_arr, unc
        cube_value = np.full(n, -1, dtype=np.int64)
        for x, cube in cubes.items():
            cube_value[x] = cube.value
        return chi_arr, unc, cube_value

    # ------------------------------------------------------------------
    # epoch logic (Algorithm 1, COLORING-EPOCH) — token path
    # ------------------------------------------------------------------
    def _run_epoch(self, stream, chi, uncolored, epoch) -> None:
        n, delta = self.n, self.delta
        b = ceil_log2(delta + 1)
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        cubes = {x: Subcube.full(b) for x in uncolored}
        self.meter.set_gauge("pcc", len(uncolored) * (b + ceil_log2(max(2, b)) + 1))
        u_before = len(uncolored)
        fixed = 0
        stage_index = 0
        while fixed < b:
            stage_index += 1
            kk = min(k, b - fixed)
            self._run_stage(
                stream, chi, uncolored, cubes, kk, epoch, stage_index
            )
            fixed += kk
        # --- end-of-epoch pass: collect F (line 29) ---
        proposals = {x: cubes[x].sole_color for x in uncolored}
        conflict_edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and proposals[u] == proposals[v]:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    conflict_edges.append(key)
        self.meter.set_gauge(
            "epoch conflict edges F",
            len(conflict_edges) * 2 * ceil_log2(max(2, n)),
        )
        # --- commit on a Turán independent set (lines 30-33) ---
        members = sorted(uncolored)
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        independent = turan_independent_set(conflict_graph)
        for i in independent:
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)
        self.meter.clear_gauge("epoch conflict edges F")
        self.meter.clear_gauge("pcc")
        if self.instrument:
            self.stats.epoch_stats.append(
                EpochStats(
                    epoch=epoch,
                    uncolored_before=u_before,
                    uncolored_after=len(uncolored),
                    conflict_edges=len(conflict_edges),
                    stages=stage_index,
                )
            )

    # ------------------------------------------------------------------
    # stage logic (Algorithm 1, lines 12-27) — token path
    # ------------------------------------------------------------------
    def _run_stage(
        self, stream, chi, uncolored, cubes, kk, epoch, stage_index
    ) -> None:
        n, delta = self.n, self.delta
        s = 1 << kk
        members = sorted(uncolored)
        # --- pass 1: slack counters (line 14) ---
        self.meter.set_gauge(
            "stage counters", len(members) * s * ceil_log2(max(2, delta + 2))
        )
        used = {x: np.zeros(s, dtype=np.int64) for x in members}
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            for x, y in ((token.u, token.v), (token.v, token.u)):
                if x in uncolored:
                    color = chi.get(y)
                    if color is not None and cubes[x].contains(color):
                        used[x][cubes[x].pattern_of(color, kk)] += 1
        slacks = {}
        for x in members:
            base = np.array(
                [cubes[x].subpattern_count(delta + 1, j, kk) for j in range(s)],
                dtype=np.int64,
            )
            slacks[x] = np.maximum(0, base - used[x])
        potential_before = None
        if self.instrument:
            potential_before = self._measure_potential(stream, chi, uncolored, cubes, slacks=None)
        # --- selection ---
        if self.selection == "greedy_slack":
            proposals = {
                x: int(np.argmax(slacks[x])) for x in members
            }
        else:
            p = choose_family_prime(n, self.prime_policy, self.prime_override)
            selector = SlackWeightedSelector(p, n, cid_space=s)
            for x in members:
                selector.register_vertex(x, np.arange(s), slacks[x])
            self.meter.set_gauge("part accumulators", selector.accumulator_bits())
            # --- pass 2: part sums over the sqrt(|H|) parts (lines 20-23) ---
            conflict_edges = self._collect_conflict_edges(stream, uncolored, cubes)
            part = selector.part_sums(conflict_edges)
            a_star = int(np.argmin(part)) if len(conflict_edges) else 0
            # --- pass 3: members of the best part (lines 24-26) ---
            conflict_edges = self._collect_conflict_edges(stream, uncolored, cubes)
            member = selector.member_sums(a_star, conflict_edges)
            b_star = int(np.argmin(member)) if len(conflict_edges) else 0
            proposals = {
                x: selector.proposal_for(x, a_star, b_star) for x in members
            }
            self.meter.clear_gauge("part accumulators")
        # --- tighten the PCC (line 27) ---
        for x in members:
            j = proposals[x]
            if slacks[x][j] <= 0:
                raise ReproError(
                    f"stage selected a zero-slack pattern for vertex {x}; "
                    "Lemma 3.6 invariant violated"
                )
            cubes[x] = cubes[x].restrict(j, kk)
        self.meter.clear_gauge("stage counters")
        if self.instrument:
            potential_after = self._measure_potential(
                stream, chi, uncolored, cubes, slacks=None
            )
            self.stats.stage_stats.append(
                StageStats(
                    epoch=epoch,
                    stage=stage_index,
                    k=kk,
                    potential_before=potential_before,
                    potential_after=potential_after,
                    uncolored=len(uncolored),
                )
            )

    # ------------------------------------------------------------------
    def _collect_conflict_edges(self, stream, uncolored, cubes):
        """One streaming pass listing edges inside U with equal subcubes.

        These are exactly the edges contributing to the potential (eq. (2));
        the selector consumes them to evaluate its accumulators.  The pass
        itself only feeds accumulators of ``O(sqrt(|H|) log n)`` bits in the
        paper's accounting; the edge list here is a computational shortcut
        with identical results (module docstring of selector.py).
        """
        edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and cubes[u] == cubes[v]:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append(key)
        return edges

    # ------------------------------------------------------------------
    def _final_pass(self, stream, chi, uncolored) -> None:
        """Line 6-7: collect all edges incident to U, then finish greedily."""
        adjacency = {x: set() for x in uncolored}
        stored = 0
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            for x, y in ((token.u, token.v), (token.v, token.u)):
                if x in uncolored and y not in adjacency.get(x, ()):
                    adjacency[x].add(y)
                    stored += 1
        self._finish_greedy(chi, uncolored, adjacency, stored)

    def _finish_greedy(self, chi, uncolored, adjacency, stored) -> None:
        """Shared final-pass epilogue: gauge the store, first-fit U."""
        n = self.n
        self.meter.set_gauge("final edges", stored * 2 * ceil_log2(max(2, n)))
        palette = set(range(1, self.delta + 2))
        for x in sorted(uncolored):
            used_colors = {chi[y] for y in adjacency[x] if chi.get(y) is not None}
            free = sorted(palette - used_colors)
            if not free:
                raise ReproError(f"final pass found no free color for vertex {x}")
            chi[x] = free[0]
        uncolored.clear()
        self.meter.clear_gauge("final edges")

    # ------------------------------------------------------------------
    def _measure_potential(self, stream, chi, uncolored, cubes, slacks) -> float:
        """Out-of-band diagnostic: Phi via Lemma 3.3 (sum of dconf(x)/s_x).

        Reads the stream out-of-band (``tokens`` / ``iter_tokens``, not
        ``new_pass``) so that instrumentation does not distort the pass
        count.
        """
        dconf = {x: 0 for x in uncolored}
        used_total = {x: 0 for x in uncolored}
        tokens = (
            stream.iter_tokens()
            if isinstance(stream, StreamSource)
            else stream.tokens
        )
        for token in tokens:
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored:
                if cubes[u] == cubes[v]:
                    dconf[u] += 1
                    dconf[v] += 1
            else:
                for x, y in ((u, v), (v, u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None and cubes[x].contains(color):
                            used_total[x] += 1
        phi = 0.0
        for x in uncolored:
            s_x = max(0, cubes[x].count_in_range(self.delta + 1) - used_total[x])
            if dconf[x] > 0:
                if s_x == 0:
                    return float("inf")
                phi += dconf[x] / s_x
        return phi
