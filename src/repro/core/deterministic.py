"""Algorithm 1: deterministic multipass semi-streaming (Delta+1)-coloring.

Theorem 1: ``O(n log^2 n)`` bits of space, ``O(log Delta * log log Delta)``
passes, palette exactly ``[Delta + 1]``.

Structure (Section 3.1-3.3):

- **Epochs** (``COLORING-EPOCH``): start from the current proper partial
  coloring ``(U, chi)`` with the trivial PCC ``P_x = {0,1}^b``; each epoch
  colors at least a third of ``U`` (Lemma 3.8) and epochs stop once
  ``|U| <= n / Delta``.
- **Stages** within an epoch: fix the next ``k = 1 + floor(log(n/|U|))``
  bits of every ``P_x``, choosing each vertex's bit pattern via the
  slack-weighted, hash-family-derandomized selection of
  :mod:`repro.core.selector` (3 streaming passes per stage: slack counters,
  part sums, member sums).
- **End of epoch**: each ``P_x`` is a singleton proposal; one pass collects
  the would-be-monochromatic edges ``F`` (Lemma 3.7: ``|F| <= |U|``), and
  the constructive Turán lemma commits the proposals on an independent set
  of ``(U, F)``.
- **Final pass** (line 6): once ``|U| <= n/Delta``, store every edge
  incident to ``U`` (at most ``|U| * Delta <= n``) and finish greedily.

``selection="greedy_slack"`` swaps the family search for the max-slack
heuristic (1 pass per stage, no Lemma 3.5 guarantee) — see DESIGN.md,
faithfulness note 1.
"""

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import (
    ceil_log2,
    floor_log2,
    next_prime,
    prime_in_range,
)
from repro.core.selector import SlackWeightedSelector
from repro.core.subcube import Subcube
from repro.graph.graph import Graph
from repro.graph.independent_set import turan_independent_set
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken


# Pending-key budget for the block slack pass: flushing the (vertex,
# pattern) batch into the histogram at this size keeps peak memory bounded
# by the batch while amortizing the O(n*s) bincount over many blocks.
_FLUSH_KEYS = 1 << 20


@dataclass
class StageStats:
    """Instrumentation for one stage (used by experiments F1/A1)."""

    epoch: int
    stage: int
    k: int
    potential_before: float
    potential_after: float
    uncolored: int


@dataclass
class EpochStats:
    """Instrumentation for one epoch (experiment F2)."""

    epoch: int
    uncolored_before: int
    uncolored_after: int
    conflict_edges: int
    stages: int


@dataclass
class RunStats:
    """Aggregate run diagnostics."""

    passes: int = 0
    epochs: int = 0
    stage_stats: list[StageStats] = field(default_factory=list)
    epoch_stats: list[EpochStats] = field(default_factory=list)


def choose_family_prime(n: int, policy: str, override=None) -> int:
    """The Carter-Wegman prime for the stage selector.

    ``policy="paper"`` takes a prime in ``[8 n log n, 16 n log n]``
    (Algorithm 1, line 16); ``policy="scaled"`` takes the first prime
    ``>= max(2n+1, 17)``, trading the Lemma 3.2 approximation constant for
    speed on larger inputs (DESIGN.md, note 1).
    """
    if override is not None:
        return next_prime(override)
    log_n = max(1, ceil_log2(max(2, n)))
    if policy == "paper":
        return prime_in_range(8 * n * log_n, 16 * n * log_n)
    if policy == "scaled":
        return next_prime(max(2 * n + 1, 17))
    raise ReproError(f"unknown prime policy {policy!r}")


class DeterministicColoring(MultipassStreamingAlgorithm):
    """Deterministic multipass ``(Delta+1)``-coloring (Theorem 1).

    Consumes either data-plane view.  Given a :class:`TokenStream`, every
    pass is the original token-at-a-time loop; given a
    :class:`~repro.streaming.source.StreamSource`, the counting passes
    (slack counters, conflict-edge collection, the end-of-epoch F pass,
    and the final stored-edges pass) run vectorized over ``(k, 2)`` edge
    blocks with ``np.bincount``-style updates.  Both paths take the same
    passes, charge the same :class:`SpaceMeter` gauges, and produce the
    identical coloring (locked by the block-equivalence test suite).
    """

    supports_blocks = True

    def __init__(
        self,
        n: int,
        delta: int,
        selection: str = "hash_family",
        prime_policy: str = "paper",
        prime=None,
        instrument: bool = False,
        max_epochs=None,
    ):
        super().__init__()
        if selection not in ("hash_family", "greedy_slack"):
            raise ReproError(f"unknown selection mode {selection!r}")
        self.n = n
        self.delta = delta
        self.selection = selection
        self.prime_policy = prime_policy
        self.prime_override = prime
        self.instrument = instrument
        # Guard against non-convergence in heuristic mode; the paper bound
        # is ceil(log_{3/2} Delta) epochs (Lemma 3.8).
        if max_epochs is None:
            max_epochs = 4 * max(1, ceil_log2(max(2, delta))) + 8
        self.max_epochs = max_epochs
        self.stats = RunStats()
        self.palette_size = delta + 1

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        n, delta = self.n, self.delta
        use_blocks = isinstance(stream, StreamSource)
        chi: dict[int, int] = {v: None for v in range(n)}
        if delta == 0:
            for v in range(n):
                chi[v] = 1
            return chi
        uncolored = set(range(n))
        self.meter.set_gauge("partial coloring", n * (ceil_log2(delta + 2) + 1))
        epoch = 0
        while len(uncolored) * delta > n:
            epoch += 1
            if epoch > self.max_epochs:
                break  # heuristic mode may stall; the final pass still finishes
            self._run_epoch(stream, chi, uncolored, epoch, use_blocks)
        self._final_pass(stream, chi, uncolored, use_blocks)
        self.stats.passes = stream.passes_used
        self.stats.epochs = epoch
        return chi

    # ------------------------------------------------------------------
    # block-path state snapshots (derived per pass; O(n) << O(m) scan cost)
    # ------------------------------------------------------------------
    def _state_arrays(self, chi, uncolored, cubes=None):
        from repro.graph.coloring import coloring_array

        n = self.n
        chi_arr = coloring_array(n, chi)  # 0 encodes "uncolored"
        unc = np.zeros(n, dtype=bool)
        if uncolored:
            unc[list(uncolored)] = True
        if cubes is None:
            return chi_arr, unc
        cube_value = np.full(n, -1, dtype=np.int64)
        for x, cube in cubes.items():
            cube_value[x] = cube.value
        return chi_arr, unc, cube_value

    # ------------------------------------------------------------------
    # epoch logic (Algorithm 1, COLORING-EPOCH)
    # ------------------------------------------------------------------
    def _run_epoch(self, stream, chi, uncolored, epoch, use_blocks) -> None:
        n, delta = self.n, self.delta
        b = ceil_log2(delta + 1)
        k = 1 + floor_log2(max(1, n // len(uncolored)))
        cubes = {x: Subcube.full(b) for x in uncolored}
        self.meter.set_gauge("pcc", len(uncolored) * (b + ceil_log2(max(2, b)) + 1))
        u_before = len(uncolored)
        fixed = 0
        stage_index = 0
        while fixed < b:
            stage_index += 1
            kk = min(k, b - fixed)
            self._run_stage(
                stream, chi, uncolored, cubes, kk, epoch, stage_index, use_blocks
            )
            fixed += kk
        # --- end-of-epoch pass: collect F (line 29) ---
        # Cubes are singletons here, so "equal proposals" is exactly "equal
        # cube values"; the block path reuses the conflict-edge collector.
        proposals = {x: cubes[x].sole_color for x in uncolored}
        if use_blocks:
            conflict_edges = self._collect_conflict_edges_blocks(
                stream, uncolored, cubes
            )
        else:
            conflict_edges = []
            seen = set()
            for token in stream.new_pass():
                if not isinstance(token, EdgeToken):
                    continue
                u, v = token.u, token.v
                if u in uncolored and v in uncolored and proposals[u] == proposals[v]:
                    key = (min(u, v), max(u, v))
                    if key not in seen:
                        seen.add(key)
                        conflict_edges.append(key)
        self.meter.set_gauge(
            "epoch conflict edges F",
            len(conflict_edges) * 2 * ceil_log2(max(2, n)),
        )
        # --- commit on a Turán independent set (lines 30-33) ---
        members = sorted(uncolored)
        index = {x: i for i, x in enumerate(members)}
        conflict_graph = Graph(len(members))
        for u, v in conflict_edges:
            conflict_graph.add_edge(index[u], index[v])
        independent = turan_independent_set(conflict_graph)
        for i in independent:
            x = members[i]
            chi[x] = proposals[x]
            uncolored.discard(x)
        self.meter.clear_gauge("epoch conflict edges F")
        self.meter.clear_gauge("pcc")
        if self.instrument:
            self.stats.epoch_stats.append(
                EpochStats(
                    epoch=epoch,
                    uncolored_before=u_before,
                    uncolored_after=len(uncolored),
                    conflict_edges=len(conflict_edges),
                    stages=stage_index,
                )
            )

    # ------------------------------------------------------------------
    # stage logic (Algorithm 1, lines 12-27)
    # ------------------------------------------------------------------
    def _run_stage(
        self, stream, chi, uncolored, cubes, kk, epoch, stage_index, use_blocks
    ) -> None:
        n, delta = self.n, self.delta
        s = 1 << kk
        members = sorted(uncolored)
        # --- pass 1: slack counters (line 14) ---
        self.meter.set_gauge(
            "stage counters", len(members) * s * ceil_log2(max(2, delta + 2))
        )
        if use_blocks:
            slacks = self._stage_slacks_blocks(stream, chi, uncolored, cubes, kk, members)
        else:
            used = {x: np.zeros(s, dtype=np.int64) for x in members}
            for token in stream.new_pass():
                if not isinstance(token, EdgeToken):
                    continue
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None and cubes[x].contains(color):
                            used[x][cubes[x].pattern_of(color, kk)] += 1
            slacks = {}
            for x in members:
                base = np.array(
                    [cubes[x].subpattern_count(delta + 1, j, kk) for j in range(s)],
                    dtype=np.int64,
                )
                slacks[x] = np.maximum(0, base - used[x])
        potential_before = None
        if self.instrument:
            potential_before = self._measure_potential(stream, chi, uncolored, cubes, slacks=None)
        # --- selection ---
        if self.selection == "greedy_slack":
            proposals = {
                x: int(np.argmax(slacks[x])) for x in members
            }
        else:
            p = choose_family_prime(n, self.prime_policy, self.prime_override)
            selector = SlackWeightedSelector(p, n, cid_space=s)
            for x in members:
                selector.register_vertex(x, np.arange(s), slacks[x])
            self.meter.set_gauge("part accumulators", selector.accumulator_bits())
            collect = (
                self._collect_conflict_edges_blocks
                if use_blocks
                else self._collect_conflict_edges
            )
            # --- pass 2: part sums over the sqrt(|H|) parts (lines 20-23) ---
            conflict_edges = collect(stream, uncolored, cubes)
            part = selector.part_sums(conflict_edges)
            a_star = int(np.argmin(part)) if len(conflict_edges) else 0
            # --- pass 3: members of the best part (lines 24-26) ---
            conflict_edges = collect(stream, uncolored, cubes)
            member = selector.member_sums(a_star, conflict_edges)
            b_star = int(np.argmin(member)) if len(conflict_edges) else 0
            proposals = {
                x: selector.proposal_for(x, a_star, b_star) for x in members
            }
            self.meter.clear_gauge("part accumulators")
        # --- tighten the PCC (line 27) ---
        for x in members:
            j = proposals[x]
            if slacks[x][j] <= 0:
                raise ReproError(
                    f"stage selected a zero-slack pattern for vertex {x}; "
                    "Lemma 3.6 invariant violated"
                )
            cubes[x] = cubes[x].restrict(j, kk)
        self.meter.clear_gauge("stage counters")
        if self.instrument:
            potential_after = self._measure_potential(
                stream, chi, uncolored, cubes, slacks=None
            )
            self.stats.stage_stats.append(
                StageStats(
                    epoch=epoch,
                    stage=stage_index,
                    k=kk,
                    potential_before=potential_before,
                    potential_after=potential_after,
                    uncolored=len(uncolored),
                )
            )

    # ------------------------------------------------------------------
    def _collect_conflict_edges(self, stream, uncolored, cubes):
        """One streaming pass listing edges inside U with equal subcubes.

        These are exactly the edges contributing to the potential (eq. (2));
        the selector consumes them to evaluate its accumulators.  The pass
        itself only feeds accumulators of ``O(sqrt(|H|) log n)`` bits in the
        paper's accounting; the edge list here is a computational shortcut
        with identical results (module docstring of selector.py).
        """
        edges = []
        seen = set()
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored and cubes[u] == cubes[v]:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    edges.append(key)
        return edges

    # ------------------------------------------------------------------
    # vectorized block passes (same passes, same counts, same gauges)
    # ------------------------------------------------------------------
    def _stage_slacks_blocks(self, stream, chi, uncolored, cubes, kk, members):
        """Pass 1 over edge blocks: ``np.bincount`` instead of per-token dicts.

        Within an epoch every uncolored vertex's subcube shares ``(b,
        fixed)`` and differs only in ``value``, so membership and
        ``pattern_of`` reduce to branch-free bit arithmetic on arrays.
        """
        n, delta = self.n, self.delta
        s = 1 << kk
        fixed = cubes[members[0]].fixed
        chi_arr, unc, cube_value = self._state_arrays(chi, uncolored, cubes)
        low_mask = (1 << fixed) - 1
        # Batch flat (vertex, pattern) keys and flush into the histogram
        # whenever the batch tops _FLUSH_KEYS: O(m + n*s*flushes) work with
        # peak memory bounded by the batch, not the stream length, so the
        # O(chunk_size)-memory promise of lazy sources survives this pass.
        counts = np.zeros(n * s, dtype=np.int64)
        key_chunks: list = []
        pending = 0
        for item in stream.new_pass():
            if not isinstance(item, np.ndarray):
                continue
            for x, y in ((item[:, 0], item[:, 1]), (item[:, 1], item[:, 0])):
                cy = chi_arr[y]
                sel = unc[x] & (cy > 0) & (((cy - 1) & low_mask) == cube_value[x])
                if not sel.any():
                    continue
                pattern = ((cy[sel] - 1) >> fixed) & (s - 1)
                key_chunks.append(x[sel] * s + pattern)
                pending += len(key_chunks[-1])
                if pending >= _FLUSH_KEYS:
                    counts += np.bincount(
                        np.concatenate(key_chunks), minlength=n * s
                    )
                    key_chunks.clear()
                    pending = 0
        # The deferred histogram replaces counting work the token path does
        # inside its (timed) loop; charge it to the pass it belongs to.
        reduce_start = time.perf_counter()
        if key_chunks:
            counts += np.bincount(np.concatenate(key_chunks), minlength=n * s)
        stream.pass_seconds[-1] += time.perf_counter() - reduce_start
        used = counts.reshape(n, s)[members]
        # base[i, j] = |restrict(j, kk) ∩ [1, delta+1]| in closed form.
        hi = delta + 1
        step = 1 << (fixed + kk)
        values = cube_value[members][:, None] | (
            np.arange(s, dtype=np.int64)[None, :] << fixed
        )
        base = np.where(values >= hi, 0, (hi - 1 - values) // step + 1)
        slack_matrix = np.maximum(0, base - used)
        return {x: slack_matrix[i] for i, x in enumerate(members)}

    def _collect_conflict_edges_blocks(self, stream, uncolored, cubes):
        """Block twin of :meth:`_collect_conflict_edges`.

        Returns the identical conflict-edge sequence as a ``(k, 2)`` array:
        unique and in first-occurrence stream order, matching the token
        path's list exactly.  Order matters — the selector accumulates
        float potentials per edge, and near-ties under a different
        summation order could flip the argmin.
        """
        from repro.graph.csr import dedupe_edges

        _, unc, cube_value = self._state_arrays({}, uncolored, cubes)
        chunks = []
        for item in stream.new_pass():
            if not isinstance(item, np.ndarray):
                continue
            u, v = item[:, 0], item[:, 1]
            sel = unc[u] & unc[v] & (cube_value[u] == cube_value[v])
            if sel.any():
                chunks.append(item[sel])
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        # Deferred dedup mirrors the token path's (timed) in-loop seen-set.
        reduce_start = time.perf_counter()
        edges = dedupe_edges(self.n, np.concatenate(chunks), keep_order=True)
        stream.pass_seconds[-1] += time.perf_counter() - reduce_start
        return edges

    # ------------------------------------------------------------------
    def _final_pass(self, stream, chi, uncolored, use_blocks=False) -> None:
        """Line 6-7: collect all edges incident to U, then finish greedily."""
        n = self.n
        if use_blocks:
            adjacency, stored = self._collect_final_adjacency_blocks(
                stream, uncolored
            )
        else:
            adjacency = {x: set() for x in uncolored}
            stored = 0
            for token in stream.new_pass():
                if not isinstance(token, EdgeToken):
                    continue
                for x, y in ((token.u, token.v), (token.v, token.u)):
                    if x in uncolored and y not in adjacency.get(x, ()):
                        adjacency[x].add(y)
                        stored += 1
        self.meter.set_gauge("final edges", stored * 2 * ceil_log2(max(2, n)))
        palette = set(range(1, self.delta + 2))
        for x in sorted(uncolored):
            used_colors = {chi[y] for y in adjacency[x] if chi.get(y) is not None}
            free = sorted(palette - used_colors)
            if not free:
                raise ReproError(f"final pass found no free color for vertex {x}")
            chi[x] = free[0]
        uncolored.clear()
        self.meter.clear_gauge("final edges")

    def _collect_final_adjacency_blocks(self, stream, uncolored):
        """Block twin of the final-pass edge collection.

        Gathers the unique directed pairs ``(x, y)`` with ``x`` uncolored
        (exactly what the token path's per-vertex sets hold), then groups
        them into adjacency lists with one sort.
        """
        _, unc = self._state_arrays({}, uncolored)
        chunks = []
        for item in stream.new_pass():
            if not isinstance(item, np.ndarray):
                continue
            u, v = item[:, 0], item[:, 1]
            keep = unc[u] | unc[v]
            if keep.any():
                chunks.append(item[keep])
        adjacency: dict[int, list] = {x: [] for x in uncolored}
        if not chunks:
            return adjacency, 0
        # Deferred grouping mirrors the token path's (timed) in-loop
        # adjacency-set building.
        from repro.streaming.blocks import group_pairs

        reduce_start = time.perf_counter()
        arr = np.concatenate(chunks)
        fwd = arr[unc[arr[:, 0]]]
        rev = arr[unc[arr[:, 1]]][:, ::-1]
        pairs = np.concatenate([fwd, rev])
        keys = np.unique(pairs[:, 0] * self.n + pairs[:, 1])
        for x, ys in group_pairs(np.stack([keys // self.n, keys % self.n], axis=1)):
            adjacency[x] = ys.tolist()
        stream.pass_seconds[-1] += time.perf_counter() - reduce_start
        return adjacency, len(keys)

    # ------------------------------------------------------------------
    def _measure_potential(self, stream, chi, uncolored, cubes, slacks) -> float:
        """Out-of-band diagnostic: Phi via Lemma 3.3 (sum of dconf(x)/s_x).

        Reads the stream out-of-band (``tokens`` / ``iter_tokens``, not
        ``new_pass``) so that instrumentation does not distort the pass
        count.
        """
        dconf = {x: 0 for x in uncolored}
        used_total = {x: 0 for x in uncolored}
        tokens = (
            stream.iter_tokens()
            if isinstance(stream, StreamSource)
            else stream.tokens
        )
        for token in tokens:
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if u in uncolored and v in uncolored:
                if cubes[u] == cubes[v]:
                    dconf[u] += 1
                    dconf[v] += 1
            else:
                for x, y in ((u, v), (v, u)):
                    if x in uncolored:
                        color = chi.get(y)
                        if color is not None and cubes[x].contains(color):
                            used_total[x] += 1
        phi = 0.0
        for x in uncolored:
            s_x = max(0, cubes[x].count_in_range(self.delta + 1) - used_total[x])
            if dconf[x] > 0:
                if s_x == 0:
                    return float("inf")
                phi += dconf[x] / s_x
        return phi
