"""The paper's contributions.

- :class:`DeterministicColoring` — Theorem 1 / Algorithm 1: deterministic
  semi-streaming ``(Delta+1)``-coloring in ``O(log Delta log log Delta)``
  passes.
- :class:`DeterministicListColoring` — Theorem 2: deterministic
  ``(deg+1)``-list-coloring, same pass/space bounds.
- :class:`RobustColoring` — Theorem 3 / Algorithm 2: adversarially robust
  ``O(Delta^{5/2})``-coloring; the ``beta`` parameter realizes the
  Corollary 4.7 colors/space tradeoff.
- :class:`LowRandomnessRobustColoring` — Theorem 4 / Algorithm 3:
  robust ``O(Delta^3)``-coloring whose space bound *includes* random bits.
- :func:`two_party_coloring_protocol` — Corollary 3.11: the communication
  protocol obtained from Algorithm 1.
"""

from repro.core.communication import ProtocolResult, two_party_coloring_protocol
from repro.core.deterministic import DeterministicColoring
from repro.core.list_coloring import DeterministicListColoring
from repro.core.robust import RobustColoring, RobustParameters
from repro.core.robust_lowrandom import LowRandomnessRobustColoring

__all__ = [
    "DeterministicColoring",
    "DeterministicListColoring",
    "LowRandomnessRobustColoring",
    "ProtocolResult",
    "RobustColoring",
    "RobustParameters",
    "two_party_coloring_protocol",
]
