"""Algorithm 3: randomness-efficient adversarially robust O(Delta^3)-coloring.

Theorem 4 / Theorem 7: a robust coloring with palette
``[(Delta+1)] x [l^2]`` (``l = 2^{floor(log Delta)}``, so ``O(Delta^3)``
colors) in ``~O(n)`` bits of space *including* all random bits — the
information-theoretically clean counterpart of Algorithm 2's random oracle.

Mechanics: ``P = ceil(10 log n)`` independent 4-wise-independent hash
functions ``h_{i,j} : V -> [l^2]`` per epoch ``i``.  Each sketch ``D_{i,j}``
stores the ``h_{i,j}``-monochromatic edges seen while ``curr < i``, but is
invalidated (``None``) if it ever exceeds ``7n/Delta`` edges (lines 10-14).
Lemma 4.8: by Chebyshev on the 4-wise independence, each ``D_{i,j}``
overflows with probability ``<= 1/2``, so w.h.p. some ``j`` survives at
query time.  The query greedily ``(Delta+1)``-colors ``D_{curr,k} | B``
and outputs the pair ``(chi(y), h_{curr,k}(y))`` (Lemma 4.9).

A failed query (all ``D_{curr,j}`` invalidated) raises
:class:`AlgorithmFailure` — the ``delta`` error budget of the theorem.
"""

import numpy as np

from repro.common.exceptions import AlgorithmFailure, ReproError
from repro.common.integer_math import ceil_log2, floor_log2, next_prime
from repro.common.rng import SeededRng
from repro.graph.coloring import greedy_coloring
from repro.graph.graph import Graph
from repro.hashing.kindependent import PolynomialHashFamily
from repro.streaming.blocks import trim_hash_cache
from repro.streaming.model import OnePassAlgorithm


class LowRandomnessRobustColoring(OnePassAlgorithm):
    """Robust ``O(Delta^3)``-coloring within semi-streaming space incl. randomness."""

    supports_blocks = True
    # The per-vertex hash memo is a simulation speedup re-derived from the
    # stored coefficients; snapshots drop it.
    _snapshot_skip_ = ("_hash_cache",)

    def _snapshot_init_(self) -> None:
        self._hash_cache = {}

    def __init__(self, n: int, delta: int, seed: int, repetitions=None):
        super().__init__()
        if delta < 1:
            raise ReproError(f"delta must be >= 1, got {delta}")
        self.n = n
        self.delta = delta
        # l = greatest power of two <= Delta; palette [(Delta+1)] x [l^2].
        self.ell = 1 << floor_log2(delta)
        self.range_size = self.ell * self.ell
        self.repetitions = (
            repetitions
            if repetitions is not None
            else max(1, 10 * ceil_log2(max(2, n)))
        )
        self.overflow_cap = max(1, (7 * n) // delta)
        # 4-independent family V -> [l^2] of size poly(n) (Lemma 4.8 needs
        # exactly 4-wise independence for its variance computation).
        prime = next_prime(max(n, self.range_size, 11))
        self.family = PolynomialHashFamily(prime, k=4, m=self.range_size)
        rng = SeededRng(seed)
        # Coefficients for h_{i,j}: i in [Delta] epochs, j in [P] repetitions
        # (the family's batched sampler draws the identical sequence the
        # previous direct rng.np.integers call did).
        self._coeffs = self.family.coeff_array(rng, (delta, self.repetitions))
        self.meter.charge_random_bits(
            delta * self.repetitions * self.family.seed_bits()
        )
        self._prime = prime
        # D_{i,j}: list of edges, or None once invalidated.
        self._d_sets: list[list] = [
            [[] for _ in range(self.repetitions)] for _ in range(delta + 2)
        ]
        self._buffer: list[tuple[int, int]] = []
        self._curr = 1
        self._hash_cache: dict[int, np.ndarray] = {}
        self._edge_bits = 2 * ceil_log2(max(2, n))
        self._update_space()

    # ------------------------------------------------------------------
    def _hash_all(self, x: int) -> np.ndarray:
        """Values ``h_{i,j}(x)`` for all (i, j) at once, cached per vertex.

        Horner evaluation of all ``Delta * P`` degree-3 polynomials,
        vectorized; the cache is a simulation speedup only (the real
        algorithm re-evaluates from the stored O(log n)-bit seeds).
        """
        cached = self._hash_cache.get(x)
        if cached is None:
            c = self._coeffs  # shape (delta, P, 4), low-to-high degree
            acc = np.zeros(c.shape[:2], dtype=np.int64)
            for d in range(3, -1, -1):
                acc = (acc * x + c[:, :, d]) % self._prime
            cached = acc % self.range_size
            self._hash_cache[x] = cached
            trim_hash_cache(self._hash_cache)
        return cached

    def _update_space(self) -> None:
        stored = sum(
            len(dj)
            for di in self._d_sets
            for dj in di
            if dj is not None
        )
        self.meter.set_gauge("D sketches", stored * self._edge_bits)
        self.meter.set_gauge("buffer B", len(self._buffer) * self._edge_bits)

    # ------------------------------------------------------------------
    def process(self, u: int, v: int) -> None:
        # Lines 6-8: buffer roll.
        if len(self._buffer) == self.n:
            self._buffer = []
            self._curr += 1
        self._buffer.append((u, v))
        # Lines 9-14: future epochs' sketches.
        hu = self._hash_all(u)
        hv = self._hash_all(v)
        # Monochromatic (i, j) pairs are rare (probability 1/l^2 each), so
        # find them vectorized and only touch those sketches.
        mono_i, mono_j = np.nonzero(hu == hv)
        for i, j in zip(mono_i + 1, mono_j):
            if not self._curr + 1 <= i <= self.delta:
                continue
            d_i = self._d_sets[i]
            d_ij = d_i[j]
            if d_ij is None:
                continue
            if len(d_ij) < self.overflow_cap:
                d_ij.append((u, v))
            else:
                d_i[j] = None  # wipe if it grows too large (line 14)
        self._update_space()

    def process_block(self, edges: np.ndarray) -> None:
        """Vectorized :meth:`process` over a ``(k, 2)`` block (bit-identical)."""
        from repro.streaming.blocks import sketch_process_block

        sketch_process_block(
            self, edges, num_epochs=self.delta, capacity=self.n
        )

    # ------------------------------------------------------------------
    def query(self) -> dict[int, int]:
        # Line 15: first surviving repetition for the current epoch.
        if self._curr <= self.delta:
            d_curr = self._d_sets[self._curr]
        else:
            d_curr = [[] for _ in range(self.repetitions)]
        k = next((j for j, d in enumerate(d_curr) if d is not None), None)
        if k is None:
            raise AlgorithmFailure(
                f"all {self.repetitions} sketches of epoch {self._curr} overflowed"
            )
        # Line 16: greedy coloring of D_{curr,k} | B.
        edges = list(d_curr[k]) + self._buffer
        graph = Graph(self.n)  # repro: noqa[R3] sketch contents, not the stream
        for u, v in edges:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        chi = greedy_coloring(graph)
        # Line 17: output (chi(y), h_{curr,k}(y)) flattened to one integer.
        if self._curr <= self.delta:
            h_row = lambda y: int(self._hash_all(y)[self._curr - 1][k])  # noqa: E731
        else:
            h_row = lambda y: 0  # noqa: E731
        coloring = {}
        for y in range(self.n):
            coloring[y] = (chi[y] - 1) * self.range_size + h_row(y) + 1
        return coloring

    # ------------------------------------------------------------------
    @property
    def palette_size(self) -> int:
        """``(Delta+1) * l^2 = O(Delta^3)``."""
        return (self.delta + 1) * self.range_size

    def surviving_sketches(self, epoch=None) -> int:
        """How many ``D_{epoch, j}`` are still valid (A3 ablation)."""
        epoch = self._curr if epoch is None else epoch
        if not 1 <= epoch <= self.delta:
            return self.repetitions
        return sum(1 for d in self._d_sets[epoch] if d is not None)
