"""Derandomized proposal selection: the g_w map and the hash-family search.

This module implements the heart of Algorithm 1's stage (lines 13-27):

1. Each uncolored vertex ``x`` has *candidate proposals* (for Algorithm 1,
   the ``2^k`` bit patterns of eq. (6); for the list-coloring extension,
   classes of a Lemma 3.10 partition, or individual colors in the final
   stage).  Each candidate carries a nonnegative integer *slack* value; the
   target sampling distribution is ``w_{x,j} = slack_j / sum_i slack_i``
   (eq. (4)).

2. The ``g_w`` rounding map of Lemma 3.2 converts a uniform value in
   ``[p]`` into a draw from (approximately) ``w_{x, .}``: candidate ``j``
   owns a contiguous block of ``floor(p * w_{x,j} * (1 + 1/(8 log n)))``
   slots.  Implementation note (DESIGN.md section 3): every positive-weight
   candidate is guaranteed at least one slot and leftover slots go to the
   last positive candidate, so the map is total even when the caller uses a
   smaller-than-paper prime; this preserves the crucial invariant that only
   positive-slack candidates can be selected (Lemma 3.6).

3. The Carter-Wegman family ``H = {x -> ax+b mod p}`` is searched for a
   member ``h*`` whose induced proposal assignment has (near-)minimal
   potential contribution ``sum_edges 1{cid_u = cid_v} (1/slack_u +
   1/slack_v)`` (eq. (2) restricted to conflict edges).  The search follows
   the paper's two-level scheme: split ``H`` into ``sqrt(|H|) = p`` parts
   keyed by the coefficient ``a`` (pass 2: per-part sums), then scan the
   best part over ``b`` (pass 3: per-member sums).  The per-part sums are
   computed *exactly* in closed form using the affine structure: within
   part ``a``, ``h(v) - h(u) = a(v-u) mod p`` is constant, so the sum over
   ``b`` reduces to cyclic-interval overlaps of the g_w blocks (see
   :func:`_cyclic_overlap_profile`).  Exact computation is a sub-case of
   the paper's ``(1 + 1/(8 log n))``-approximate accumulators; the space
   charge is the same ``O(sqrt(|H|) log n)`` bits.

Candidates are identified by *canonical ids* (cids) shared across vertices,
so that ``cid_u == cid_v`` means "the two proposals land in the same color
class" — for subcube stages the cid is the bit pattern ``j``; for the final
list-coloring stage it is the color itself.
"""

import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_log2


class VertexBlocks:
    """The g_w map for one vertex: cids, slacks, and slot-block boundaries."""

    __slots__ = ("cids", "slacks", "sizes", "cum", "garr")
    # The materialized slot->cid array is a derived cache.
    _snapshot_skip_ = ("garr",)

    def _snapshot_init_(self) -> None:
        self.garr = None

    def __init__(self, cids: np.ndarray, slacks: np.ndarray, sizes: np.ndarray):
        self.cids = cids
        self.slacks = slacks
        self.sizes = sizes
        self.cum = np.concatenate(([0], np.cumsum(sizes)))
        self.garr = None  # lazily materialized length-p cid array

    def cid_of_slot(self, t: int) -> int:
        """The candidate owning slot ``t`` (g_w(x, t))."""
        idx = int(np.searchsorted(self.cum, t, side="right")) - 1
        idx = min(idx, len(self.cids) - 1)
        return int(self.cids[idx])

    def materialize(self) -> np.ndarray:
        """Length-p array mapping slot -> cid (cached)."""
        if self.garr is None:
            self.garr = np.repeat(self.cids, self.sizes)
        return self.garr


class SlackWeightedSelector:
    """g_w construction + deterministic Carter-Wegman family search."""

    def __init__(self, p: int, n: int, cid_space: int):
        """``p``: family prime; ``n``: vertex count (sets the rounding eps);
        ``cid_space``: exclusive upper bound on canonical ids."""
        self.p = p
        self.n = n
        self.cid_space = cid_space
        # Lemma 3.2's slack factor 1 + 1/(8 log n).
        self.eps = 1.0 / (8.0 * max(1.0, np.log2(max(2, n))))
        self._blocks: dict[int, VertexBlocks] = {}

    # ------------------------------------------------------------------
    # g_w construction (Lemma 3.2)
    # ------------------------------------------------------------------
    def register_vertex(self, x: int, cids, slacks) -> None:
        """Install vertex ``x``'s candidates and slacks; build its blocks.

        Only candidates with slack > 0 receive slots, so the selected
        proposal always has positive slack (the Lemma 3.6 invariant).
        """
        cids = np.asarray(cids, dtype=np.int64)
        slacks = np.asarray(slacks, dtype=np.int64)
        if len(cids) != len(slacks):
            raise ReproError("cids and slacks must align")
        positive = slacks > 0
        if not positive.any():
            raise ReproError(
                f"vertex {x} has no positive-slack candidate; "
                "the s_x >= 1 invariant (Lemma 3.6) was violated upstream"
            )
        cids = cids[positive]
        slacks = slacks[positive]
        total = float(slacks.sum())
        w = slacks / total
        sizes = np.floor(self.p * w * (1.0 + self.eps)).astype(np.int64)
        # Every positive-weight candidate keeps >= 1 slot (see module doc).
        sizes = np.maximum(sizes, 1)
        # Truncate to exactly p slots, then hand leftovers (if the floor
        # lost mass, possible for sub-paper primes) to the last candidate.
        cum = np.cumsum(sizes)
        over = int(np.searchsorted(cum, self.p, side="left"))
        if over < len(sizes):
            sizes = sizes[: over + 1].copy()
            cids = cids[: over + 1]
            slacks = slacks[: over + 1]
            sizes[over] = self.p - (cum[over - 1] if over > 0 else 0)
        else:
            sizes = sizes.copy()
            sizes[-1] += self.p - int(cum[-1])
        if int(sizes.sum()) != self.p or (sizes <= 0).any():
            raise ReproError(f"g_w block construction failed for vertex {x}")
        self._blocks[x] = VertexBlocks(cids, slacks, sizes)

    def blocks(self, x: int) -> VertexBlocks:
        """The registered block structure of vertex ``x``."""
        return self._blocks[x]

    # ------------------------------------------------------------------
    # family search
    # ------------------------------------------------------------------
    def edge_weight_array(self, u: int, v: int) -> np.ndarray:
        """Dense cid-indexed weights ``1/slack_u[c] + 1/slack_v[c]``.

        Zero at cids not positive for both endpoints (those can never be
        co-selected, since g_w only emits positive-slack candidates... for
        the sum they simply contribute nothing).
        """
        bu = self._blocks[u]
        bv = self._blocks[v]
        wu = np.zeros(self.cid_space)
        wu[bu.cids] = 1.0 / bu.slacks
        wv = np.zeros(self.cid_space)
        wv[bv.cids] = 1.0 / bv.slacks
        both = (wu > 0) & (wv > 0)
        out = np.zeros(self.cid_space)
        out[both] = wu[both] + wv[both]
        return out

    def _edge_shift_profile(self, u: int, v: int) -> np.ndarray:
        """``S[d] = sum over shared cids of wt(cid) * |A_cid ∩ (B_cid - d)|``.

        ``A_cid``/``B_cid`` are the slot blocks of ``u``/``v``; the overlap
        is on the cyclic group Z_p.  ``S[d]`` is exactly the sum over
        ``b in F_p`` of the edge's potential contribution under
        ``h_{a,b}`` for any part ``a`` with ``a(v-u) = d mod p``.
        """
        bu = self._blocks[u]
        bv = self._blocks[v]
        p = self.p
        wt = self.edge_weight_array(u, v)
        s = np.zeros(p)
        cid_to_v_index = {int(c): i for i, c in enumerate(bv.cids)}
        d = np.arange(p)
        for i, cid in enumerate(bu.cids):
            weight = wt[cid]
            if weight == 0.0:
                continue
            j = cid_to_v_index.get(int(cid))
            if j is None:
                continue
            a0, a1 = int(bu.cum[i]), int(bu.cum[i + 1])
            b0, b1 = int(bv.cum[j]), int(bv.cum[j + 1])
            length2 = b1 - b0
            t0 = (b0 - d) % p
            end = t0 + length2
            # Piece 1: [t0, min(end, p)) against [a0, a1).
            hi1 = np.minimum(end, p)
            ov = np.maximum(0, np.minimum(a1, hi1) - np.maximum(a0, t0))
            # Piece 2 (wraparound): [0, end - p) against [a0, a1).
            hi2 = np.maximum(0, end - p)
            ov += np.maximum(0, np.minimum(a1, hi2) - a0)
            s += weight * ov
        return s

    def part_sums(self, conflict_edges) -> np.ndarray:
        """Pass 2: ``sum_b Phi-contribution`` for every part ``a`` (exactly).

        ``conflict_edges`` is a list of ``(u, v)`` pairs or a ``(k, 2)``
        array (the block data plane hands arrays; the sum is
        order-insensitive so both give identical results).
        """
        p = self.p
        parts = np.zeros(p)
        a = np.arange(p)
        for u, v in conflict_edges:
            s = self._edge_shift_profile(u, v)
            d_of_a = (a * ((v - u) % p)) % p
            parts += s[d_of_a]
        return parts

    def member_sums(self, a: int, conflict_edges) -> np.ndarray:
        """Pass 3: exact potential of every member ``h_{a, b}`` of part ``a``."""
        p = self.p
        phi = np.zeros(p)
        b = np.arange(p)
        for u, v in conflict_edges:
            gu = self._blocks[u].materialize()
            gv = self._blocks[v].materialize()
            cu = gu[(a * u + b) % p]
            cv = gv[(a * v + b) % p]
            wt = self.edge_weight_array(u, v)
            phi += np.where(cu == cv, wt[cu], 0.0)
        return phi

    def choose(self, conflict_edges) -> tuple[int, int]:
        """Run the two-level search and return the selected ``(a*, b*)``."""
        if len(conflict_edges) == 0:
            return (0, 0)  # any member works; nothing to optimize
        parts = self.part_sums(conflict_edges)
        a_star = int(np.argmin(parts))
        members = self.member_sums(a_star, conflict_edges)
        b_star = int(np.argmin(members))
        return (a_star, b_star)

    def proposal_for(self, x: int, a: int, b: int) -> int:
        """The cid vertex ``x`` adopts under ``h_{a,b}``: ``g_w(x, h(x))``."""
        t = (a * x + b) % self.p
        return self._blocks[x].cid_of_slot(t)

    def greedy_proposals(self) -> dict[int, int]:
        """Fast heuristic mode: every vertex takes its max-slack candidate.

        Deterministic and preserves the positive-slack invariant, but
        without the averaging guarantee of Lemma 3.5 (used by the A1
        ablation and large-n smoke runs; see DESIGN.md section 3).
        """
        out = {}
        for x, blk in self._blocks.items():
            out[x] = int(blk.cids[int(np.argmax(blk.slacks))])
        return out

    # ------------------------------------------------------------------
    # space accounting helpers
    # ------------------------------------------------------------------
    def accumulator_bits(self) -> int:
        """Paper accounting: sqrt(|H|) = p accumulators of O(log n) bits."""
        return self.p * 2 * max(1, ceil_log2(max(2, self.n)))
