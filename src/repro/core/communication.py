"""Corollary 3.11: two-party communication protocol for (Delta+1)-coloring.

The standard reduction: Alice holds edge set A, Bob holds B.  They run the
multipass streaming algorithm on the stream A followed by B; each pass
costs two messages (Alice -> Bob at the boundary, Bob -> Alice at the end
of the pass), each carrying the algorithm's current state.  With Algorithm
1's ``O(n log^2 n)``-bit state and ``O(log Delta log log Delta)`` passes,
the total communication is ``O(n log^4 n)`` bits — matching the corollary
(the interesting part being the small *round* count).

The simulation measures message sizes with the algorithm's own
:class:`SpaceMeter` (current working-state bits at each handoff moment).
"""

from dataclasses import dataclass, field

from repro.streaming.stream import TokenStream


@dataclass
class ProtocolResult:
    """Outcome of the simulated two-party protocol."""

    coloring: dict[int, int]
    passes: int
    rounds: int
    total_bits: int
    message_bits: list[int] = field(default_factory=list)


def two_party_coloring_protocol(algorithm, alice_tokens, bob_tokens, n: int) -> ProtocolResult:
    """Simulate the Corollary 3.11 protocol.

    Parameters
    ----------
    algorithm:
        A :class:`repro.streaming.MultipassStreamingAlgorithm` (typically
        :class:`repro.core.DeterministicColoring`).
    alice_tokens, bob_tokens:
        The two players' token sequences (any interleaving-free split).
    n:
        Number of vertices.
    """
    alice_tokens = list(alice_tokens)
    bob_tokens = list(bob_tokens)
    boundary = len(alice_tokens)
    stream = TokenStream(alice_tokens + bob_tokens, n)
    messages: list[int] = []

    def observer(pass_index: int, token_index: int) -> None:
        # Alice -> Bob: the instant the read position crosses into B's half.
        if token_index == boundary:
            messages.append(algorithm.meter.current_bits)
        # Bob -> Alice: at the start of each pass after the first, Bob ships
        # the state back so Alice can restart the stream.
        if token_index == 0 and pass_index > 1:
            messages.append(algorithm.meter.current_bits)

    stream.set_observer(observer)
    coloring = algorithm.run(stream)
    # Bob's final message delivering the answer/state after the last pass.
    messages.append(algorithm.meter.current_bits)
    if boundary == 0 or boundary == len(stream.tokens):
        # Degenerate splits: one player holds everything; a single message
        # of the final state suffices.
        messages = [algorithm.meter.current_bits]
    return ProtocolResult(
        coloring=coloring,
        passes=stream.passes_used,
        rounds=len(messages),
        total_bits=sum(messages),
        message_bits=messages,
    )
