"""Palette sparsification [ACK19]: randomized non-robust (Delta+1)-coloring.

Each vertex samples a list of ``Theta(log n)`` colors from ``[Delta+1]``
before the stream; one pass stores only the *conflicting* edges (endpoints
with intersecting lists).  [ACK19] prove that w.h.p. only ``~O(n)`` edges
survive and a proper list-coloring from the sampled lists exists.  This is
the algorithm whose success the paper's trichotomy contrasts with the
robust setting: against an *adaptive* adversary its guarantee evaporates
(the adversary can learn colors and flood conflicting edges), which
experiment T6 demonstrates via :class:`repro.baselines.naive.
OneShotRandomColoring`; here we keep the classical static-stream version
as a :class:`MultipassStreamingAlgorithm`.

Completion uses greedy list-coloring over several random orders (the
paper's existence proof is non-constructive; [ACK19] give a poly-time
completion, and greedy-with-retries is the standard practical stand-in).
"""


import numpy as np

from repro.common.exceptions import AlgorithmFailure, ReproError
from repro.common.integer_math import ceil_log2
from repro.common.rng import SeededRng
from repro.graph.graph import Graph
from repro.streaming.machine import PassConsumer, drive_blocks, require_machine
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken
from repro.obs.clock import perf_now


class _ConflictCollectConsumer(PassConsumer):
    """The single streaming pass: keep edges whose endpoint lists intersect.

    Lists are held as one boolean membership matrix so the intersection
    test for a whole block is a single vectorized ``any()``; the
    surviving edges become one CSR build (same dedup, n, m, and neighbor
    sets as ``Graph.add_edge``, so the completion is identical).
    """

    def __init__(self, algo):
        self.algo = algo
        mask = np.zeros((algo.n, algo.delta + 2), dtype=bool)
        for v, colors in algo.lists.items():
            mask[v, list(colors)] = True
        self.mask = mask
        self.chunks: list = []

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        hit = (self.mask[item[:, 0]] & self.mask[item[:, 1]]).any(axis=1)
        if hit.any():
            self.chunks.append(item[hit])

    def finish(self, stream):
        from repro.graph.csr import CSRGraph

        reduce_start = perf_now()
        conflict = CSRGraph.from_edge_array(
            self.algo.n,
            np.concatenate(self.chunks)
            if self.chunks
            else np.empty((0, 2), dtype=np.int64),
        )
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return conflict


class PaletteSparsificationColoring(MultipassStreamingAlgorithm):
    """Single-pass randomized ``(Delta+1)``-coloring for oblivious streams."""

    supports_blocks = True
    supports_checkpoint = True

    def __init__(
        self,
        n: int,
        delta: int,
        seed: int,
        list_size_factor: int = 8,
        completion_attempts: int = 50,
    ):
        super().__init__()
        if delta < 1:
            raise ReproError("delta must be >= 1")
        self.n = n
        self.delta = delta
        self.palette_size = delta + 1
        self._rng = SeededRng(seed)
        palette = list(range(1, delta + 2))
        size = min(delta + 1, max(2, list_size_factor * ceil_log2(max(2, n))))
        self.lists = {
            v: frozenset(self._rng.sample(palette, size)) for v in range(n)
        }
        self.meter.charge_random_bits(n * size * ceil_log2(delta + 2))
        self.completion_attempts = completion_attempts
        self.conflict_edge_count = 0

    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        conflict = Graph(self.n)
        for token in stream.new_pass():
            if not isinstance(token, EdgeToken):
                continue
            u, v = token.u, token.v
            if self.lists[u] & self.lists[v]:
                conflict.add_edge(u, v)
        return self._complete(conflict)

    # ------------------------------------------------------------------
    # pass machine (block path): one collection pass, then completion
    # ------------------------------------------------------------------
    def blocks_start(self) -> None:
        self._mach = {"phase": "collect"}

    def blocks_consumer(self):
        if require_machine(self)["phase"] == "collect":
            return _ConflictCollectConsumer(self)
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        if mach["phase"] == "collect":
            self._mach = {"phase": "done", "coloring": self._complete(result)}

    # ------------------------------------------------------------------
    def _complete(self, conflict) -> dict[int, int]:
        """Greedy list coloring of the conflict graph, retrying with fresh
        random orders (and most-constrained-first as a last attempt)."""
        self.conflict_edge_count = conflict.m
        self.meter.set_gauge(
            "conflict edges", conflict.m * 2 * ceil_log2(max(2, self.n))
        )
        order = list(range(self.n))
        for attempt in range(self.completion_attempts):
            if attempt == self.completion_attempts - 1:
                order.sort(key=lambda v: len(self.lists[v]))
            else:
                self._rng.shuffle(order)
            coloring = self._try_complete(conflict, order)
            if coloring is not None:
                return coloring
        raise AlgorithmFailure(
            "palette sparsification could not complete a list coloring "
            f"after {self.completion_attempts} attempts"
        )

    def _try_complete(self, conflict: Graph, order):
        coloring: dict[int, int] = {}
        for v in order:
            used = {coloring[w] for w in conflict.neighbors(v) if w in coloring}
            free = sorted(self.lists[v] - used)
            if not free:
                return None
            coloring[v] = free[0]
        return coloring
