"""Deterministic multipass baselines in the style of [ACS22].

[ACS22] (Assadi, Chen, Sun, STOC 2022) proved that deterministic
single-pass Delta-based coloring is impossible with sub-exponential
palettes, but that ``O(Delta^2)`` colors are achievable in 2 passes and
``O(Delta)`` colors in ``O(log Delta)`` passes.  The paper under
reproduction cites these as the prior state of the art that Theorem 1
improves to ``Delta + 1``.

The two baselines here achieve the same (colors, passes) regimes with
self-contained machinery (DESIGN.md section 2.3):

- :class:`TwoPassQuadraticColoring`: search the 2-universal family
  ``((ax+b) mod p) mod R`` (R = 4 Delta^2) for a member with few
  monochromatic edges — the same part/member two-level trick as Algorithm
  1, using the closed-form per-part collision count — then store the
  conflicting edges' neighborhoods and repair with a fresh ``Delta+1``
  block.  4 passes, ``<= 4 Delta^2 + Delta + 1`` colors.
- :class:`ColorReductionColoring`: start from the quadratic coloring and
  repeatedly halve the palette by grouping ``2(Delta+1)`` color classes
  per bucket, storing each bucket's induced edges, and recoloring the
  bucket offline with ``Delta+1`` fresh colors (Kuhn-Wattenhofer-style
  reduction).  ``O(log Delta)`` reduction rounds; buckets whose stored
  edges would exceed the space budget are deferred to extra passes, so the
  measured pass count is data dependent (reported by experiments T9).

Block-path execution runs on the resumable pass machine of
:mod:`repro.streaming.machine`: every cross-pass quantity (the selected
``(a*, b*)``, the conflicted set, the round's bucket state) lives in
``self._mach``, so runs are suspend/restorable at pass boundaries; the
token path below is the unchanged reference implementation.
"""


import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2, next_prime
from repro.streaming.machine import PassConsumer, drive_blocks, require_machine
from repro.streaming.model import MultipassStreamingAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken
from repro.obs.clock import perf_now


class _PartCountsConsumer(PassConsumer):
    """Pass 1 (blocks): aggregate collision counts by edge difference.

    The per-edge collision vector depends on the edge only through
    ``(v - u) mod p``, so one ``bincount`` of differences per block
    followed by a single (difference x part) reduction replaces the
    per-edge ``O(p)`` update — exact int64 arithmetic throughout.
    """

    def __init__(self, algo):
        self.algo = algo
        self.diff_counts = np.zeros(algo.p, dtype=np.int64)

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        p = self.algo.p
        diffs = (item[:, 1] - item[:, 0]) % p
        self.diff_counts += np.bincount(diffs, minlength=p)

    def finish(self, stream):
        p, r = self.algo.p, self.algo.range_size
        reduce_start = perf_now()
        a = np.arange(1, p, dtype=np.int64)
        totals = np.zeros(p - 1, dtype=np.int64)
        present = np.flatnonzero(self.diff_counts)
        batch = max(1, (1 << 22) // max(1, p))
        for start in range(0, len(present), batch):
            dvals = present[start : start + batch]
            d = (dvals[:, None] * a[None, :]) % p
            collide = (p - d) * (d % r == 0) + d * ((d - p) % r == 0)
            totals += self.diff_counts[dvals] @ collide
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return totals


class _MemberCountsConsumer(PassConsumer):
    """Pass 2 (blocks): circular-interval difference counting.

    A member ``b`` sees edge ``(u, v)`` collide iff ``t = (a* u + b)
    mod p`` lands in ``[0, p - d)`` with ``r | d``, or in ``[p - d, p)``
    with ``r | (d - p)`` (``d = a*(v - u) mod p``).  Edges with neither
    divisibility (the vast majority) contribute to no member at all;
    each contributing edge becomes one circular ``b``-interval in a
    difference array — ``O(1)`` per edge instead of ``O(p)``.
    """

    def __init__(self, algo, a_star: int):
        self.algo = algo
        self.a_star = a_star
        self.diff = np.zeros(algo.p + 1, dtype=np.int64)

    def _add_intervals(self, starts, lengths) -> None:
        p = self.algo.p
        ends = starts + lengths
        np.add.at(self.diff, starts, 1)
        np.add.at(self.diff, np.minimum(ends, p), -1)
        wrap = ends > p
        if wrap.any():
            self.diff[0] += int(wrap.sum())
            np.add.at(self.diff, ends[wrap] - p, -1)

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        p, r = self.algo.p, self.algo.range_size
        a_star = self.a_star
        d = (a_star * ((item[:, 1] - item[:, 0]) % p)) % p
        t0 = (a_star * item[:, 0]) % p
        low = d % r == 0  # t in [0, p - d)
        if low.any():
            self._add_intervals((-t0[low]) % p, p - d[low])
        high = ((d - p) % r == 0) & (d > 0)  # t in [p - d, p)
        if high.any():
            self._add_intervals((p - d[high] - t0[high]) % p, d[high])

    def finish(self, stream):
        return np.cumsum(self.diff[: self.algo.p])


class _MonoEdgesConsumer(PassConsumer):
    """Pass 3 (blocks): the monochromatic edges of ``f`` -> conflicted set."""

    def __init__(self, algo, a_star: int, b_star: int):
        self.algo = algo
        self.a_star = a_star
        self.b_star = b_star
        self.conflicted: set[int] = set()
        self.mono = 0

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        fb = ((self.a_star * item + self.b_star) % self.algo.p) % self.algo.range_size
        mask = fb[:, 0] == fb[:, 1]
        self.mono += int(mask.sum())
        if mask.any():
            self.conflicted.update(np.unique(item[mask]).tolist())

    def finish(self, stream):
        return self.conflicted, self.mono


class _RepairAdjacencyConsumer(PassConsumer):
    """Pass 4 (blocks): gather directed incidences, group by sort."""

    def __init__(self, algo, conflicted: set):
        self.conflicted = conflicted
        conf = np.zeros(algo.n, dtype=bool)
        if conflicted:
            conf[list(conflicted)] = True
        self.conf = conf
        self.chunks: list = []
        self.stored = 0

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        mu = self.conf[item[:, 0]]
        mv = self.conf[item[:, 1]]
        self.stored += int(mu.sum()) + int(mv.sum())
        if mu.any():
            self.chunks.append(item[mu])
        if mv.any():
            self.chunks.append(item[mv][:, ::-1])

    def finish(self, stream):
        adjacency: dict[int, set[int]] = {v: set() for v in self.conflicted}
        reduce_start = perf_now()
        if self.chunks:
            from repro.streaming.blocks import group_pairs

            for x, ys in group_pairs(np.concatenate(self.chunks)):
                adjacency[x] = set(ys.tolist())
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return adjacency, self.stored


class TwoPassQuadraticColoring(MultipassStreamingAlgorithm):
    """Deterministic ``O(Delta^2)``-coloring in four streaming passes."""

    supports_blocks = True
    supports_checkpoint = True

    def __init__(self, n: int, delta: int, range_multiplier: int = 4):
        super().__init__()
        if delta < 1:
            raise ReproError("delta must be >= 1")
        self.n = n
        self.delta = delta
        self.range_size = range_multiplier * delta * delta
        self.p = next_prime(max(n, self.range_size) + 1)
        self.palette_size = self.range_size + delta + 1

    # ------------------------------------------------------------------
    def _edge_list(self, stream):
        for token in stream.new_pass():
            if isinstance(token, EdgeToken):
                yield token.u, token.v

    def _part_collision_counts(self, stream) -> np.ndarray:
        """Pass 1: for each part ``a``, ``sum_b #monochromatic edges of h_{a,b}``.

        Closed form per edge and part: with ``d = a(v-u) mod p``, as ``b``
        varies, ``t = h'(u)`` sweeps ``F_p`` and ``f(u) = t mod R`` collides
        with ``f(v) = ((t+d) mod p) mod R`` for exactly
        ``(p-d) * 1{R | d} + d * 1{R | (d-p)}`` values of ``t``.
        """
        p, r = self.p, self.range_size
        a = np.arange(1, p, dtype=np.int64)
        totals = np.zeros(p - 1, dtype=np.int64)
        for u, v in self._edge_list(stream):
            d = (a * ((v - u) % p)) % p
            collide = (p - d) * (d % r == 0) + d * ((d - p) % r == 0)
            totals += collide
        self.meter.set_gauge("part accumulators", (p - 1) * 2 * ceil_log2(max(2, self.n)))
        return totals

    def _member_collision_counts(self, stream, a_star: int) -> np.ndarray:
        """Pass 2: exact monochromatic-edge count of every ``h_{a*, b}``."""
        p, r = self.p, self.range_size
        b = np.arange(p, dtype=np.int64)
        counts = np.zeros(p, dtype=np.int64)
        for u, v in self._edge_list(stream):
            t = (a_star * u + b) % p
            fu = t % r
            fv = ((t + a_star * ((v - u) % p)) % p) % r
            counts += fu == fv
        return counts

    # ------------------------------------------------------------------
    # pass machine (block path)
    # ------------------------------------------------------------------
    def blocks_start(self) -> None:
        self._mach = {"phase": "parts"}

    def blocks_consumer(self):
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "parts":
            return _PartCountsConsumer(self)
        if phase == "members":
            return _MemberCountsConsumer(self, mach["a_star"])
        if phase == "mono":
            return _MonoEdgesConsumer(self, mach["a_star"], mach["b_star"])
        if phase == "repair":
            return _RepairAdjacencyConsumer(self, mach["conflicted"])
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        phase = mach["phase"]
        n = self.n
        if phase == "parts":
            self.meter.set_gauge(
                "part accumulators", (self.p - 1) * 2 * ceil_log2(max(2, n))
            )
            mach["a_star"] = int(np.argmin(result)) + 1
            mach["phase"] = "members"
        elif phase == "members":
            mach["b_star"] = int(np.argmin(result))
            self.meter.clear_gauge("part accumulators")
            mach["phase"] = "mono"
        elif phase == "mono":
            conflicted, mono = result
            mach["conflicted"] = conflicted
            self.meter.set_gauge("mono edges", mono * 2 * ceil_log2(max(2, n)))
            mach["phase"] = "repair"
        elif phase == "repair":
            adjacency, stored = result
            self.meter.set_gauge("repair edges", stored * 2 * ceil_log2(max(2, n)))
            coloring = self._repair(
                mach["a_star"], mach["b_star"], mach["conflicted"], adjacency
            )
            self.meter.clear_gauge("mono edges")
            self.meter.clear_gauge("repair edges")
            self._mach = {"phase": "done", "coloring": coloring}

    # ------------------------------------------------------------------
    def _repair(self, a_star, b_star, conflicted, adjacency) -> dict[int, int]:
        """Unconflicted vertices keep ``f(v)+1``; conflicted ones are
        repaired greedily inside the fresh block ``[R+1, R+Delta+1]``."""

        def f(x: int) -> int:
            return ((a_star * x + b_star) % self.p) % self.range_size

        coloring = {v: f(v) + 1 for v in range(self.n)}
        for x in sorted(conflicted):
            used = {coloring[y] for y in adjacency[x] if y not in conflicted}
            used |= {
                coloring[y]
                for y in adjacency[x]
                if y in conflicted and coloring[y] > self.range_size
            }
            c = self.range_size + 1
            while c in used:
                c += 1
            if c > self.palette_size:
                raise ReproError("repair block exhausted; delta promise violated?")
            coloring[x] = c
        return coloring

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        n = self.n
        parts = self._part_collision_counts(stream)
        a_star = int(np.argmin(parts)) + 1
        members = self._member_collision_counts(stream, a_star)
        b_star = int(np.argmin(members))
        self.meter.clear_gauge("part accumulators")

        def f(x: int) -> int:
            return ((a_star * x + b_star) % self.p) % self.range_size

        # Pass 3: the monochromatic edges of f -> conflicted vertices.
        conflicted: set[int] = set()
        mono = 0
        for u, v in self._edge_list(stream):
            if f(u) == f(v):
                conflicted.add(u)
                conflicted.add(v)
                mono += 1
        self.meter.set_gauge("mono edges", mono * 2 * ceil_log2(max(2, n)))
        # Pass 4: all edges incident to conflicted vertices.
        adjacency = {v: set() for v in conflicted}
        stored = 0
        for u, v in self._edge_list(stream):
            if u in conflicted:
                adjacency[u].add(v)
                stored += 1
            if v in conflicted:
                adjacency[v].add(u)
                stored += 1
        self.meter.set_gauge("repair edges", stored * 2 * ceil_log2(max(2, n)))
        coloring = self._repair(a_star, b_star, conflicted, adjacency)
        self.meter.clear_gauge("mono edges")
        self.meter.clear_gauge("repair edges")
        return coloring


class _ReductionPassConsumer(PassConsumer):
    """One reduction pass: admit pending buckets, evict at the edge budget.

    The (state-independent) intra-bucket filter is vectorized per block;
    the budget/eviction state machine on the surviving pairs is the
    token path's, run sequentially in stream order.
    """

    def __init__(self, algo, bucket_arr: np.ndarray, pending: set):
        self.algo = algo
        self.bucket_arr = bucket_arr
        self.batch = set(pending)
        self.stored_edges: dict[int, list] = {b: [] for b in self.batch}
        self.stored = 0

    def feed(self, item) -> None:
        if not isinstance(item, np.ndarray):
            return
        bu_arr = self.bucket_arr[item[:, 0]]
        keep = bu_arr == self.bucket_arr[item[:, 1]]
        for (u, v), bu in zip(item[keep].tolist(), bu_arr[keep].tolist()):
            if bu not in self.batch:
                continue
            if self.stored >= self.algo.space_budget_edges:
                self.batch.discard(bu)
                self.stored -= len(self.stored_edges.pop(bu, []))
                continue
            self.stored_edges[bu].append((u, v))
            self.stored += 1

    def finish(self, stream):
        return self.stored_edges, self.stored, self.batch


class ColorReductionColoring(MultipassStreamingAlgorithm):
    """Deterministic ``O(Delta)``-coloring via iterated palette halving."""

    supports_blocks = True
    supports_checkpoint = True

    def __init__(self, n: int, delta: int, space_budget_edges=None):
        super().__init__()
        self.n = n
        self.delta = delta
        self.base = TwoPassQuadraticColoring(n, delta)
        # Store at most this many edges per reduction pass (semi-streaming).
        self.space_budget_edges = (
            space_budget_edges if space_budget_edges is not None else 4 * n
        )
        self.final_palette_bound = 4 * (delta + 1)

    @property
    def palette_bound(self) -> int:
        return self.final_palette_bound

    # ------------------------------------------------------------------
    # pass machine (block path): base stage, then reduction rounds
    # ------------------------------------------------------------------
    def blocks_start(self) -> None:
        self.base.blocks_start()
        self._mach = {"phase": "base"}

    def blocks_consumer(self):
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "base":
            return self.base.blocks_consumer()
        if phase == "reduce":
            return _ReductionPassConsumer(self, mach["bucket_arr"], mach["pending"])
        return None

    def blocks_deliver(self, result, stream) -> None:
        mach = require_machine(self)
        phase = mach["phase"]
        if phase == "base":
            self.base.blocks_deliver(result, stream)
            if self.base.blocks_consumer() is None:
                coloring = self.base.blocks_result()
                # Merge the base meter so peak space reflects the pipeline.
                self.meter.set_gauge("base stage peak", self.base.meter.peak_bits)
                self.meter.clear_gauge("base stage peak")
                mach["coloring"] = coloring
                mach["palette"] = max(coloring.values())
                self._next_round()
        elif phase == "reduce":
            stored_edges, stored, batch = result
            self.meter.set_gauge(
                "reduction edges", stored * 2 * ceil_log2(max(2, self.n))
            )
            for b in batch:
                self._recolor_bucket(
                    b, mach["bucket_width"], mach["coloring"],
                    mach["new_coloring"], stored_edges[b],
                )
            mach["pending"] -= batch
            if not batch:
                raise ReproError(
                    "a single bucket exceeds the space budget; "
                    "raise space_budget_edges"
                )
            if not mach["pending"]:
                mach["coloring"] = mach["new_coloring"]
                mach["palette"] = ceil_div(
                    mach["palette"], mach["bucket_width"]
                ) * (self.delta + 1)
                self.meter.clear_gauge("reduction edges")
                self._next_round()

    def _next_round(self) -> None:
        """Enter the next reduction round, or finish below the bound."""
        mach = self._mach
        if mach["palette"] <= self.final_palette_bound:
            self._mach = {"phase": "done", "coloring": mach["coloring"]}
            return
        bucket_width = 2 * (self.delta + 1)
        coloring = mach["coloring"]
        color_arr = np.zeros(self.n, dtype=np.int64)
        for v, c in coloring.items():
            color_arr[v] = c
        self._mach = {
            "phase": "reduce",
            "coloring": coloring,
            "palette": mach["palette"],
            "bucket_width": bucket_width,
            "pending": set(range(ceil_div(mach["palette"], bucket_width))),
            "new_coloring": dict(coloring),
            "bucket_arr": (color_arr - 1) // bucket_width,
        }

    # ------------------------------------------------------------------
    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            return drive_blocks(self, stream)
        n, delta = self.n, self.delta
        coloring = self.base.run(stream)
        # Merge the base meter so peak space reflects the whole pipeline.
        self.meter.set_gauge("base stage peak", self.base.meter.peak_bits)
        self.meter.clear_gauge("base stage peak")
        palette = max(coloring.values())
        while palette > self.final_palette_bound:
            bucket_width = 2 * (delta + 1)
            num_buckets = ceil_div(palette, bucket_width)

            def bucket_of(color: int) -> int:
                return (color - 1) // bucket_width

            pending = set(range(num_buckets))
            new_coloring = dict(coloring)

            def intra_bucket_edges():
                """One pass of ``((u, v), bucket)`` for same-bucket edges."""
                for token in stream.new_pass():
                    if not isinstance(token, EdgeToken):
                        continue
                    bu = bucket_of(coloring[token.u])
                    if bu == bucket_of(coloring[token.v]):
                        yield (token.u, token.v), bu

            while pending:
                # Admit every pending bucket, then evict whole buckets as
                # the edge budget fills; evicted buckets retry next pass.
                batch = set(pending)
                stored_edges: dict[int, list[tuple[int, int]]] = {b: [] for b in batch}
                stored = 0
                for (u, v), bu in intra_bucket_edges():
                    if bu not in batch:
                        continue
                    if stored >= self.space_budget_edges:
                        batch.discard(bu)
                        stored -= len(stored_edges.pop(bu, []))
                        continue
                    stored_edges[bu].append((u, v))
                    stored += 1
                self.meter.set_gauge(
                    "reduction edges", stored * 2 * ceil_log2(max(2, n))
                )
                for b in batch:
                    self._recolor_bucket(
                        b, bucket_width, coloring, new_coloring, stored_edges[b]
                    )
                pending -= batch
                if not batch:
                    raise ReproError(
                        "a single bucket exceeds the space budget; "
                        "raise space_budget_edges"
                    )
            coloring = new_coloring
            palette = ceil_div(palette, bucket_width) * (delta + 1)
            self.meter.clear_gauge("reduction edges")
        return coloring

    def _recolor_bucket(self, b, bucket_width, old, new, edges) -> None:
        """Greedy (Delta+1)-recoloring of one bucket's induced subgraph."""
        delta = self.delta
        members = sorted({u for e in edges for u in e} | {
            v for v, c in old.items() if (c - 1) // bucket_width == b
        })
        adjacency: dict[int, set[int]] = {v: set() for v in members}
        for u, v in edges:
            adjacency[u].add(v)
            adjacency[v].add(u)
        offset = b * (delta + 1)
        assigned: dict[int, int] = {}
        for v in members:
            used = {assigned[w] for w in adjacency[v] if w in assigned}
            c = 1
            while c in used:
                c += 1
            if c > delta + 1:
                raise ReproError("bucket subgraph exceeded degree Delta")
            assigned[v] = c
            new[v] = offset + c
