"""A [CGS22]-style robust O(Delta^2)-coloring in ~O(n sqrt(Delta)) space.

Chakrabarti, Ghosh, Stoeckl (ITCS 2022) — the prior state of the art this
paper's Section 4 improves — gave, besides the O(Delta^3) semi-streaming
algorithm, "an O(Delta^2)-coloring in ~O(n sqrt(Delta)) space (including
random bits used)".  Corollary 4.7's headline point (i) improves exactly
this: O(Delta^2) colors in only O(n Delta^{1/3}) space.  This module
provides the comparison point.

Construction (sketch-switching, no graph-structure exploitation):

- Buffer of ``n * ceil(sqrt(Delta))`` edges; ``~sqrt(Delta)/2`` epochs.
- Per epoch, ``P = ceil(10 log n)`` 4-wise-independent hash functions
  ``h_{i,j} : V -> [l]`` with ``l = 2^{floor(log Delta)} ~ Delta`` — a
  *coarse* range, so each sketch keeps ``~m/l <= n/2`` monochromatic
  edges (capacity-capped at ``4n``, wiped on overflow as in Algorithm 3).
- Query: greedily ``(Delta+1)``-color ``D_{curr,k} | B`` for a surviving
  ``k`` and output the pair ``(chi(y), h_{curr,k}(y))`` — palette
  ``(Delta+1) * l = O(Delta^2)``.

Robustness follows the same freeze-before-reveal argument as Algorithm 3
(``D_curr`` stops receiving edges before ``h_curr`` first appears in an
output).  Space: ``O(n)`` per sketch is *not* guaranteed here — only the
buffer dominates at ``n sqrt(Delta)`` edges — which is precisely why this
sits at the ``O(n Delta^{1/2})`` point of the tradeoff curve.
"""

import numpy as np

from repro.common.exceptions import AlgorithmFailure, ReproError
from repro.common.integer_math import ceil_log2, ceil_sqrt, floor_log2, next_prime
from repro.common.rng import SeededRng
from repro.graph.coloring import greedy_coloring
from repro.graph.graph import Graph
from repro.hashing.kindependent import PolynomialHashFamily
from repro.streaming.blocks import trim_hash_cache
from repro.streaming.model import OnePassAlgorithm


class SketchSwitchingQuadraticColoring(OnePassAlgorithm):
    """[CGS22]-style robust ``O(Delta^2)``-coloring at the ``n sqrt(Delta)`` space point."""

    supports_blocks = True
    # The per-vertex hash memo is re-derived from the stored coefficients.
    _snapshot_skip_ = ("_hash_cache",)

    def _snapshot_init_(self) -> None:
        self._hash_cache = {}

    def __init__(self, n: int, delta: int, seed: int, repetitions=None):
        super().__init__()
        if delta < 1:
            raise ReproError(f"delta must be >= 1, got {delta}")
        self.n = n
        self.delta = delta
        self.ell = 1 << floor_log2(delta)
        self.buffer_capacity = n * ceil_sqrt(delta)
        self.num_epochs = max(1, -(-delta // (2 * ceil_sqrt(delta))) + 1)
        self.repetitions = (
            repetitions if repetitions is not None
            else max(1, 10 * ceil_log2(max(2, n)))
        )
        self.overflow_cap = 4 * n
        prime = next_prime(max(n, self.ell, 11))
        self.family = PolynomialHashFamily(prime, k=4, m=self.ell)
        rng = SeededRng(seed)
        # Batched sampler; draws the identical coefficient sequence the
        # previous direct rng.np.integers call did.
        self._coeffs = self.family.coeff_array(
            rng, (self.num_epochs, self.repetitions)
        )
        self.meter.charge_random_bits(
            self.num_epochs * self.repetitions * self.family.seed_bits()
        )
        self._prime = prime
        self._d_sets: list[list] = [
            [[] for _ in range(self.repetitions)]
            for _ in range(self.num_epochs + 2)
        ]
        self._buffer: list[tuple[int, int]] = []
        self._curr = 1
        self._hash_cache: dict[int, np.ndarray] = {}
        self._edge_bits = 2 * ceil_log2(max(2, n))

    # ------------------------------------------------------------------
    def _hash_all(self, x: int) -> np.ndarray:
        cached = self._hash_cache.get(x)
        if cached is None:
            c = self._coeffs
            acc = np.zeros(c.shape[:2], dtype=np.int64)
            for d in range(3, -1, -1):
                acc = (acc * x + c[:, :, d]) % self._prime
            cached = acc % self.ell
            self._hash_cache[x] = cached
            trim_hash_cache(self._hash_cache)
        return cached

    def _update_space(self) -> None:
        stored = sum(
            len(dj) for di in self._d_sets for dj in di if dj is not None
        )
        self.meter.set_gauge("D sketches", stored * self._edge_bits)
        self.meter.set_gauge("buffer B", len(self._buffer) * self._edge_bits)

    # ------------------------------------------------------------------
    def process(self, u: int, v: int) -> None:
        if len(self._buffer) == self.buffer_capacity:
            self._buffer = []
            self._curr += 1
        self._buffer.append((u, v))
        hu = self._hash_all(u)
        hv = self._hash_all(v)
        mono_i, mono_j = np.nonzero(hu == hv)
        for i, j in zip(mono_i + 1, mono_j):
            if not self._curr + 1 <= i <= self.num_epochs:
                continue
            d_i = self._d_sets[i]
            d_ij = d_i[j]
            if d_ij is None:
                continue
            if len(d_ij) < self.overflow_cap:
                d_ij.append((u, v))
            else:
                d_i[j] = None
        self._update_space()

    def process_block(self, edges: np.ndarray) -> None:
        """Vectorized :meth:`process` over a ``(k, 2)`` block (bit-identical)."""
        from repro.streaming.blocks import sketch_process_block

        sketch_process_block(
            self, edges, num_epochs=self.num_epochs,
            capacity=self.buffer_capacity,
        )

    # ------------------------------------------------------------------
    def query(self) -> dict[int, int]:
        if self._curr <= self.num_epochs:
            d_curr = self._d_sets[self._curr]
        else:
            d_curr = [[] for _ in range(self.repetitions)]
        k = next((j for j, d in enumerate(d_curr) if d is not None), None)
        if k is None:
            raise AlgorithmFailure(
                f"all {self.repetitions} sketches of epoch {self._curr} overflowed"
            )
        graph = Graph(self.n)  # repro: noqa[R3] sketch contents, not the stream
        for u, v in list(d_curr[k]) + self._buffer:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        chi = greedy_coloring(graph)
        if self._curr <= self.num_epochs:
            def h_row(y: int) -> int:
                return int(self._hash_all(y)[self._curr - 1][k])
        else:
            def h_row(y: int) -> int:
                return 0
        return {
            y: (chi[y] - 1) * self.ell + h_row(y) + 1 for y in range(self.n)
        }

    # ------------------------------------------------------------------
    @property
    def palette_size(self) -> int:
        """``(Delta+1) * l = O(Delta^2)``."""
        return (self.delta + 1) * self.ell
