"""Baseline algorithms the paper compares against or builds upon.

- :class:`TwoPassQuadraticColoring` — deterministic ``O(Delta^2)``-coloring
  in O(1) passes, in the style of [ACS22] (family search for a
  low-conflict hash coloring, then store-and-repair).
- :class:`ColorReductionColoring` — deterministic ``O(Delta)``-coloring in
  ``O(log Delta)`` reduction rounds ([ACS22]-style bound via
  Kuhn-Wattenhofer-style palette halving).
- :class:`SketchSwitchingQuadraticColoring` — the [CGS22]-style robust
  ``O(Delta^2)``-coloring at the ``~O(n sqrt(Delta))`` space point, the
  algorithm Corollary 4.7's headline improvement (i) is measured against.
- :class:`PaletteSparsificationColoring` — the randomized non-robust
  ``(Delta+1)``-coloring of [ACK19] (single pass; the algorithm the
  trichotomy contrasts with).
- :class:`OneShotRandomColoring` — a natural non-robust one-pass algorithm
  that an adaptive adversary demonstrably breaks (experiment T6).
- :class:`StoreEverythingColoring`, :class:`TrivialColoring` — the trivial
  endpoints discussed in Section 1.2.
"""

from repro.baselines.acs22 import ColorReductionColoring, TwoPassQuadraticColoring
from repro.baselines.cgs22 import SketchSwitchingQuadraticColoring
from repro.baselines.naive import (
    OneShotRandomColoring,
    StoreEverythingColoring,
    TrivialColoring,
)
from repro.baselines.palette_sparsification import PaletteSparsificationColoring

__all__ = [
    "ColorReductionColoring",
    "OneShotRandomColoring",
    "PaletteSparsificationColoring",
    "SketchSwitchingQuadraticColoring",
    "StoreEverythingColoring",
    "TrivialColoring",
    "TwoPassQuadraticColoring",
]
