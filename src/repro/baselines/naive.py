"""Trivial endpoints and the adversary-breakable one-pass baseline.

- :class:`TrivialColoring` — ``n`` colors, zero passes; the
  "color the graph trivially with n colors" endpoint of [ACS22]'s lower
  bound discussion (Section 1.2).
- :class:`StoreEverythingColoring` — store the graph, color offline; the
  other trivial endpoint (``Theta(n Delta)`` space).
- :class:`OneShotRandomColoring` — the natural randomized one-pass
  algorithm: commit to a uniformly random base coloring up front, store the
  monochromatic edges (capacity-bounded), and repair their endpoints at
  query time.  On *oblivious* streams each edge is monochromatic with
  probability ``1/range``, so the store stays small and every query is
  proper w.h.p.  An *adaptive* adversary, however, sees the base colors in
  the outputs and floods monochromatic pairs until the store overflows;
  dropped edges are improperly colored and the algorithm errs — exactly the
  non-robustness the paper's Section 4 is about (experiment T6).
"""

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2
from repro.common.rng import SeededRng
from repro.graph.coloring import greedy_coloring
from repro.graph.graph import Graph
from repro.streaming.model import MultipassStreamingAlgorithm, OnePassAlgorithm
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken


class TrivialColoring(MultipassStreamingAlgorithm):
    """``n`` distinct colors without reading the stream."""

    def __init__(self, n: int):
        super().__init__()
        self.n = n
        self.palette_size = n

    def run(self, stream: TokenStream) -> dict[int, int]:
        return {v: v + 1 for v in range(self.n)}


class StoreEverythingColoring(MultipassStreamingAlgorithm):
    """Store the whole graph in one pass, then color it greedily offline."""

    def __init__(self, n: int):
        super().__init__()
        self.n = n

    def run(self, stream: TokenStream) -> dict[int, int]:
        graph = Graph(self.n)
        for token in stream.new_pass():
            if isinstance(token, EdgeToken):
                graph.add_edge(token.u, token.v)
        self.meter.set_gauge(
            "whole graph", graph.m * 2 * ceil_log2(max(2, self.n))
        )
        return greedy_coloring(graph)


class OneShotRandomColoring(OnePassAlgorithm):
    """Random O(Delta^2)-palette coloring + bounded conflict store (non-robust).

    Maintains a current coloring ``chi`` over a fixed palette of
    ``Delta^2`` colors (exactly the boundary of the [CGS22] robust
    lower bound), stores (up to ``capacity``) edges that arrive
    monochromatic under the current ``chi``, and repairs stored conflicts
    at query time by first-fit within the *same* palette (it only knows
    its stored edges, so it cannot do better).

    On oblivious streams a fresh edge is monochromatic with probability
    ``~1/Delta^2``, so the store stays nearly empty and queries are
    proper w.h.p.  An adaptive adversary, however, reads ``chi`` off the
    outputs: first-fit repairs concentrate on low color indices, creating
    monochromatic pairs faster than the bounded store can absorb them;
    once it overflows, dropped conflicts go unrepaired and the output is
    improper — the separation the paper's Omega(Delta^2)-colors robust
    lower bound formalizes.
    """

    def __init__(self, n: int, delta: int, seed: int, range_multiplier: int = 1,
                 capacity=None):
        super().__init__()
        if delta < 1:
            raise ReproError("delta must be >= 1")
        self.n = n
        self.delta = delta
        self.range_size = range_multiplier * delta * delta
        self.palette_size = self.range_size
        self._rng = SeededRng(seed)
        self._chi = [self._rng.randint(0, self.range_size - 1) for _ in range(n)]
        self.meter.charge_random_bits(n * ceil_log2(self.range_size + 1))
        # Capacity sized for the oblivious regime: expected conflicts are
        # ~ m / range <= n/(8 Delta); leave generous slack.
        self.capacity = capacity if capacity is not None else max(4, ceil_div(n, delta))
        self._stored: list[tuple[int, int]] = []
        self._stored_adj: dict[int, set[int]] = {}
        self.dropped_edges = 0
        self._edge_bits = 2 * ceil_log2(max(2, n))

    def process(self, u: int, v: int) -> None:
        if self._chi[u] == self._chi[v]:
            if len(self._stored) < self.capacity:
                self._stored.append((u, v))
                self._stored_adj.setdefault(u, set()).add(v)
                self._stored_adj.setdefault(v, set()).add(u)
                self.meter.set_gauge(
                    "conflict store", len(self._stored) * self._edge_bits
                )
            else:
                self.dropped_edges += 1  # silently improper from here on

    def query(self) -> dict[int, int]:
        # Repair stored conflicts in place: a random palette color avoiding
        # *stored* neighbors (all the algorithm remembers).  Random rather
        # than first-fit so that oblivious streams stay near-uniform; the
        # adaptive adversary still wins because it can always see the
        # current collisions, which a Delta^2 palette cannot avoid.
        for u, v in self._stored:
            if self._chi[u] == self._chi[v]:
                used = {self._chi[w] for w in self._stored_adj.get(v, ())}
                free = [c for c in range(self.range_size) if c not in used]
                if free:
                    self._chi[v] = self._rng.choice(free)
        return {v: self._chi[v] + 1 for v in range(self.n)}
