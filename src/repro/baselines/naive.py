"""Trivial endpoints and the adversary-breakable one-pass baseline.

- :class:`TrivialColoring` — ``n`` colors, zero passes; the
  "color the graph trivially with n colors" endpoint of [ACS22]'s lower
  bound discussion (Section 1.2).
- :class:`StoreEverythingColoring` — store the graph, color offline; the
  other trivial endpoint (``Theta(n Delta)`` space).
- :class:`OneShotRandomColoring` — the natural randomized one-pass
  algorithm: commit to a uniformly random base coloring up front, store the
  monochromatic edges (capacity-bounded), and repair their endpoints at
  query time.  On *oblivious* streams each edge is monochromatic with
  probability ``1/range``, so the store stays small and every query is
  proper w.h.p.  An *adaptive* adversary, however, sees the base colors in
  the outputs and floods monochromatic pairs until the store overflows;
  dropped edges are improperly colored and the algorithm errs — exactly the
  non-robustness the paper's Section 4 is about (experiment T6).
"""


import numpy as np

from repro.common.exceptions import ReproError
from repro.common.integer_math import ceil_div, ceil_log2
from repro.common.rng import SeededRng
from repro.graph.coloring import greedy_coloring
from repro.graph.graph import Graph
from repro.streaming.model import MultipassStreamingAlgorithm, OnePassAlgorithm
from repro.streaming.source import StreamSource
from repro.streaming.stream import TokenStream
from repro.streaming.tokens import EdgeToken
from repro.obs.clock import perf_now


class TrivialColoring(MultipassStreamingAlgorithm):
    """``n`` distinct colors without reading the stream."""

    supports_blocks = True  # trivially: the stream is never read

    def __init__(self, n: int):
        super().__init__()
        self.n = n
        self.palette_size = n

    def run(self, stream: TokenStream) -> dict[int, int]:
        return {v: v + 1 for v in range(self.n)}


class StoreEverythingColoring(MultipassStreamingAlgorithm):
    """Store the whole graph in one pass, then color it greedily offline."""

    supports_blocks = True

    def __init__(self, n: int):
        super().__init__()
        self.n = n

    def run(self, stream: TokenStream) -> dict[int, int]:
        if isinstance(stream, StreamSource):
            graph = self._collect_graph_blocks(stream)
        else:
            graph = Graph(self.n)
            for token in stream.new_pass():
                if isinstance(token, EdgeToken):
                    graph.add_edge(token.u, token.v)
        self.meter.set_gauge(
            "whole graph", graph.m * 2 * ceil_log2(max(2, self.n))
        )
        return greedy_coloring(graph)

    def _collect_graph_blocks(self, stream):
        """Block twin of the collection pass: one CSR build, no token churn.

        :class:`~repro.graph.csr.CSRGraph` deduplicates exactly as
        ``Graph.add_edge`` does and exposes the same ``n``/``m``/
        ``neighbors`` surface, so the greedy offline coloring is identical.
        """
        from repro.graph.csr import CSRGraph

        chunks = [
            item for item in stream.new_pass() if isinstance(item, np.ndarray)
        ]
        # Deferred CSR build mirrors the token path's (timed) in-loop
        # add_edge work.
        reduce_start = perf_now()
        if chunks:
            graph = CSRGraph.from_edge_array(self.n, np.concatenate(chunks))
        else:
            graph = CSRGraph.from_edge_array(
                self.n, np.empty((0, 2), dtype=np.int64)
            )
        stream.pass_seconds[-1] += perf_now() - reduce_start
        return graph


class OneShotRandomColoring(OnePassAlgorithm):
    """Random O(Delta^2)-palette coloring + bounded conflict store (non-robust).

    Maintains a current coloring ``chi`` over a fixed palette of
    ``Delta^2`` colors (exactly the boundary of the [CGS22] robust
    lower bound), stores (up to ``capacity``) edges that arrive
    monochromatic under the current ``chi``, and repairs stored conflicts
    at query time by first-fit within the *same* palette (it only knows
    its stored edges, so it cannot do better).

    On oblivious streams a fresh edge is monochromatic with probability
    ``~1/Delta^2``, so the store stays nearly empty and queries are
    proper w.h.p.  An adaptive adversary, however, reads ``chi`` off the
    outputs: first-fit repairs concentrate on low color indices, creating
    monochromatic pairs faster than the bounded store can absorb them;
    once it overflows, dropped conflicts go unrepaired and the output is
    improper — the separation the paper's Omega(Delta^2)-colors robust
    lower bound formalizes.
    """

    supports_blocks = True

    def __init__(self, n: int, delta: int, seed: int, range_multiplier: int = 1,
                 capacity=None):
        super().__init__()
        if delta < 1:
            raise ReproError("delta must be >= 1")
        self.n = n
        self.delta = delta
        self.range_size = range_multiplier * delta * delta
        self.palette_size = self.range_size
        self._rng = SeededRng(seed)
        self._chi = np.array(
            [self._rng.randint(0, self.range_size - 1) for _ in range(n)],
            dtype=np.int64,
        )
        self.meter.charge_random_bits(n * ceil_log2(self.range_size + 1))
        # Capacity sized for the oblivious regime: expected conflicts are
        # ~ m / range <= n/(8 Delta); leave generous slack.
        self.capacity = capacity if capacity is not None else max(4, ceil_div(n, delta))
        self._stored: list[tuple[int, int]] = []
        self._stored_adj: dict[int, set[int]] = {}
        self.dropped_edges = 0
        self._edge_bits = 2 * ceil_log2(max(2, n))

    def process(self, u: int, v: int) -> None:
        if self._chi[u] == self._chi[v]:
            if len(self._stored) < self.capacity:
                self._store(u, v)
            else:
                self.dropped_edges += 1  # silently improper from here on

    def process_block(self, edges: np.ndarray) -> None:
        """Vectorized :meth:`process`: one conflict mask per block.

        The store evolves exactly as the scalar loop's: the first
        ``capacity - len(stored)`` monochromatic edges (in stream order)
        are kept, the rest are dropped.
        """
        mono = edges[self._chi[edges[:, 0]] == self._chi[edges[:, 1]]]
        room = max(0, self.capacity - len(self._stored))
        for u, v in mono[:room].tolist():
            self._store(u, v)
        self.dropped_edges += max(0, len(mono) - room)

    def _store(self, u: int, v: int) -> None:
        self._stored.append((u, v))
        self._stored_adj.setdefault(u, set()).add(v)
        self._stored_adj.setdefault(v, set()).add(u)
        self.meter.set_gauge(
            "conflict store", len(self._stored) * self._edge_bits
        )

    def query(self) -> dict[int, int]:
        # Repair stored conflicts in place: a random palette color avoiding
        # *stored* neighbors (all the algorithm remembers).  Random rather
        # than first-fit so that oblivious streams stay near-uniform; the
        # adaptive adversary still wins because it can always see the
        # current collisions, which a Delta^2 palette cannot avoid.
        for u, v in self._stored:
            if self._chi[u] == self._chi[v]:
                used = {int(self._chi[w]) for w in self._stored_adj.get(v, ())}
                free = [c for c in range(self.range_size) if c not in used]
                if free:
                    self._chi[v] = self._rng.choice(free)
        return {v: int(self._chi[v]) + 1 for v in range(self.n)}
