"""2-universal hashing into a small range: ``((a x + b) mod p) mod s``.

For ``a != 0`` this is the classical Carter-Wegman 2-universal family
[CW79]: any two distinct keys collide with probability at most ``1/s``.
Lemma 3.10 builds its partition family from exactly this construction, and
the deterministic O(Delta^2) baseline searches it for a low-conflict
coloring function.
"""

from dataclasses import dataclass

from repro.common.exceptions import ParameterError
from repro.common.integer_math import is_prime, mod_horner_array


@dataclass(frozen=True)
class ModFunction:
    """A member ``x -> ((a x + b) mod p) mod s``."""

    a: int
    b: int
    p: int
    s: int

    def __call__(self, x: int) -> int:
        return ((self.a * x + self.b) % self.p) % self.s

    def eval_array(self, xs):
        """Vectorized (overflow-safe) evaluation over an integer key array."""
        return mod_horner_array((self.b, self.a), xs, self.p) % self.s


class TwoUniversalFamily:
    """``{((ax+b) mod p) mod s : a in F_p \\ {0}, b in F_p}``."""

    def __init__(self, p: int, s: int):
        if not is_prime(p):
            raise ParameterError(f"modulus must be prime, got {p}")
        if not 1 <= s:
            raise ParameterError(f"range size must be >= 1, got {s}")
        self.p = p
        self.s = s

    @property
    def size(self) -> int:
        """``|H| = (p - 1) * p`` (a ranges over nonzero field elements)."""
        return (self.p - 1) * self.p

    def function(self, a: int, b: int) -> ModFunction:
        """The member with coefficients ``(a, b)``, ``a != 0``."""
        if not (1 <= a < self.p and 0 <= b < self.p):
            raise ParameterError(f"coefficients ({a}, {b}) invalid for F_{self.p}")
        return ModFunction(a, b, self.p, self.s)

    def members(self):
        """Iterate over every member (use only for small p)."""
        for a in range(1, self.p):
            for b in range(self.p):
                yield self.function(a, b)

    def sample(self, rng) -> ModFunction:
        """Uniformly random member."""
        return self.function(rng.randint(1, self.p - 1), rng.randint(0, self.p - 1))
