"""The Lemma 3.10 family of partitions of a color set.

Lemma 3.10: for any integer ``s >= 1`` and color set ``C`` there is a family
``F`` of ``O(|C|^2)`` partitions of ``C`` into ``s`` classes such that for
every collection of subsets ``L_1..L_t`` of ``C``::

    (1/|F|) * sum_{R in F} sum_i max_{S in R} (|L_i ^ S| - 1)
        <= (1/sqrt(s)) * sum_i (|L_i| - 1)

The constructive family, straight from the proof: index partitions by the
members of a 2-universal family ``h : C -> [s]`` and let class ``j`` of
partition ``R_h`` be ``{c in C : h(c) = j}``.  The (deg+1)-list-coloring
algorithm (Theorem 2) adaptively picks a sub-average partition from this
family at each stage instead of the oblivious bit-block subcubes of
Algorithm 1.

Colors here are the integers ``1..|C|`` (the library canonicalizes color
universes before streaming).
"""

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.integer_math import horner_fits_int64, next_prime
from repro.hashing.universal import TwoUniversalFamily


class PartitionFamily:
    """Partitions of ``{1..universe_size}`` into ``s`` classes, via 2-universal hashing."""

    # The O(|C|^3) class table is a derived cache; snapshots rebuild it.
    _snapshot_skip_ = ("_class_table",)

    def _snapshot_init_(self) -> None:
        self._class_table = None

    def __init__(self, universe_size: int, s: int):
        if universe_size < 1:
            raise ParameterError("universe must be non-empty")
        if s < 1:
            raise ParameterError("partition class count must be >= 1")
        self.universe_size = universe_size
        self.s = s
        self.p = next_prime(max(universe_size, s, 2))
        self._family = TwoUniversalFamily(self.p, s)
        self._class_table = None

    @property
    def size(self) -> int:
        """``|F| = (p-1) p = O(|C|^2)``."""
        return self._family.size

    def class_of(self, a: int, b: int, color: int) -> int:
        """Class index (0-based) of ``color`` under partition ``(a, b)``."""
        return self._family.function(a, b)(color)

    def members(self):
        """Iterate over all partition keys ``(a, b)``."""
        for a in range(1, self.p):
            for b in range(self.p):
                yield (a, b)

    def partition(self, a: int, b: int) -> list[set[int]]:
        """Materialize partition ``(a, b)`` as a list of ``s`` color classes."""
        h = self._family.function(a, b)
        classes: list[set[int]] = [set() for _ in range(self.s)]
        for color in range(1, self.universe_size + 1):
            classes[h(color)].add(color)
        return classes

    # ------------------------------------------------------------------
    # batched API
    # ------------------------------------------------------------------
    def class_array(self, a: int, b: int) -> np.ndarray:
        """Color -> class array for partition ``(a, b)``, indexed ``1..universe``.

        Index 0 is unused (colors are 1-based) and set to 0.  The affine
        evaluation runs through the kernel-dispatch layer when the
        arithmetic fits int64 (always true for the list-coloring regimes,
        where ``p = O(|C|)``); otherwise it falls back to the
        overflow-safe member evaluation.
        """
        fn = self._family.function(a, b)  # validates (a, b) against F_p
        if horner_fits_int64(2, self.universe_size, self.p):
            from repro.kernels import dispatch

            return dispatch(
                "partition_class_array",
                fn.a, fn.b, self.p, self.s, self.universe_size,
            )
        arr = np.zeros(self.universe_size + 1, dtype=np.int64)
        arr[1:] = fn.eval_array(
            np.arange(1, self.universe_size + 1, dtype=np.int64)
        )
        return arr

    def class_table(self) -> np.ndarray:
        """Class of every color under every member: ``(|F|, universe + 1)``.

        Rows follow :meth:`members` order; column 0 is unused (colors are
        1-based).  Cached — the table is ``O(|C|^3)`` integers, small for
        the list-coloring regimes (``|C| = O(Delta)``), and shared by every
        scoring pass of a stage.
        """
        if self._class_table is None:
            a = np.arange(1, self.p, dtype=np.int64)
            b = np.arange(self.p, dtype=np.int64)
            colors = np.arange(self.universe_size + 1, dtype=np.int64)
            # (a, b, color) -> class, flattened to members-order rows.
            vals = (
                a[:, None, None] * colors[None, None, :] + b[None, :, None]
            ) % self.p % self.s
            table = vals.reshape(-1, self.universe_size + 1)
            table[:, 0] = 0
            table.flags.writeable = False
            self._class_table = table
        return self._class_table
