"""Truly uniform random functions, materialized lazily from a seed.

Theorem 3's algorithm assumes "oracle access to O(n Delta) bits of
randomness": the coloring functions ``h_1..h_Delta : V -> [Delta^2]`` and
``g_1..g_sqrt(Delta) : V -> [Delta^{3/2}]`` are uniformly random.  The
oracle here materializes each function as a numpy table on first use and
reports the bits it hands out, so the robust algorithm's space/randomness
accounting can mirror the paper's (randomness reported separately from
working memory).
"""

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.integer_math import ceil_log2
from repro.common.rng import SeededRng, derive_seed


class OracleFunction:
    """A materialized uniform function ``[domain] -> [range_size]`` (0-based)."""

    def __init__(self, table: np.ndarray, range_size: int):
        self._table = table
        self.range_size = range_size

    def __call__(self, x: int) -> int:
        return int(self._table[x])

    def eval_array(self, xs) -> np.ndarray:
        """Vectorized evaluation: one table gather over an index array."""
        return self._table[np.asarray(xs, dtype=np.int64)]

    def table(self) -> np.ndarray:
        """The underlying value table (do not mutate)."""
        return self._table


class RandomOracle:
    """Named uniform random functions backed by one master seed.

    Each distinct ``name`` yields an independent function.  ``bits_served``
    counts ``domain * ceil(log2 range)`` bits per materialized function,
    which is the paper's accounting for the randomness oracle.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._functions: dict[str, OracleFunction] = {}
        self.bits_served = 0

    def function(self, name: str, domain: int, range_size: int) -> OracleFunction:
        """Get (materializing on first use) the uniform function for ``name``."""
        if range_size < 1:
            raise ParameterError(f"range size must be >= 1, got {range_size}")
        fn = self._functions.get(name)
        if fn is None:
            rng = SeededRng(derive_seed(self.seed, name))
            table = rng.np.integers(0, range_size, size=domain, dtype=np.int64)
            fn = OracleFunction(table, range_size)
            self._functions[name] = fn
            self.bits_served += domain * max(1, ceil_log2(max(2, range_size)))
        return fn
