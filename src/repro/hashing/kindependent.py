"""k-independent polynomial hashing over a prime field.

``h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0) mod p`` with uniform
coefficients is exactly k-independent as a function ``[p] -> [p]``.
Algorithm 3 needs a 4-independent family ``V -> [l^2]`` (the variance
computation in Lemma 4.8 expands fourth moments).

Reducing the range from ``[p]`` to ``[m]`` by a final ``mod m`` distorts
uniformity by at most a ``(1 + m/p)`` factor per point probability; with the
default ``p >> m`` the collision probabilities used by Lemma 4.8 hold up to
``1 + o(1)``, which the paper's constants absorb.  This is the standard
implementation compromise and is documented in DESIGN.md (section 3).
"""

from dataclasses import dataclass

import numpy as np

from repro.common.integer_math import is_prime


@dataclass(frozen=True)
class PolynomialFunction:
    """A member: polynomial coefficients (low to high degree), mod p, mod m."""

    coeffs: tuple[int, ...]
    p: int
    m: int

    def __call__(self, x: int) -> int:
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % self.p
        return acc % self.m

    def eval_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an int64 array of keys."""
        acc = np.zeros_like(xs, dtype=np.int64)
        for c in reversed(self.coeffs):
            acc = (acc * xs + c) % self.p
        return acc % self.m


class PolynomialHashFamily:
    """Degree-(k-1) polynomial family over ``F_p``, reduced mod ``m``."""

    def __init__(self, p: int, k: int, m: int):
        if not is_prime(p):
            raise ValueError(f"modulus must be prime, got {p}")
        if k < 1:
            raise ValueError(f"independence k must be >= 1, got {k}")
        if m < 1 or m > p:
            raise ValueError(f"range size m={m} must be in [1, p]")
        self.p = p
        self.k = k
        self.m = m

    @property
    def size(self) -> int:
        """``|H| = p^k`` (poly(n) for constant k, as Algorithm 3 requires)."""
        return self.p**self.k

    def seed_bits(self) -> int:
        """Random bits to select a member: ``k * ceil(log2 p)``."""
        return self.k * max(1, (self.p - 1).bit_length())

    def function(self, coeffs) -> PolynomialFunction:
        """The member with the given coefficient vector (length k)."""
        coeffs = tuple(int(c) % self.p for c in coeffs)
        if len(coeffs) != self.k:
            raise ValueError(f"need exactly {self.k} coefficients")
        return PolynomialFunction(coeffs, self.p, self.m)

    def sample(self, rng) -> PolynomialFunction:
        """Uniformly random member."""
        coeffs = tuple(rng.randint(0, self.p - 1) for _ in range(self.k))
        return PolynomialFunction(coeffs, self.p, self.m)
