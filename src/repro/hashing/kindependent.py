"""k-independent polynomial hashing over a prime field.

``h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0) mod p`` with uniform
coefficients is exactly k-independent as a function ``[p] -> [p]``.
Algorithm 3 needs a 4-independent family ``V -> [l^2]`` (the variance
computation in Lemma 4.8 expands fourth moments).

Reducing the range from ``[p]`` to ``[m]`` by a final ``mod m`` distorts
uniformity by at most a ``(1 + m/p)`` factor per point probability; with the
default ``p >> m`` the collision probabilities used by Lemma 4.8 hold up to
``1 + o(1)``, which the paper's constants absorb.  This is the standard
implementation compromise and is documented in DESIGN.md (section 3).
"""

from dataclasses import dataclass

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.integer_math import horner_fits_int64, is_prime, mod_horner_array


@dataclass(frozen=True)
class PolynomialFunction:
    """A member: polynomial coefficients (low to high degree), mod p, mod m."""

    coeffs: tuple[int, ...]
    p: int
    m: int

    def __call__(self, x: int) -> int:
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % self.p
        return acc % self.m

    def eval_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an integer array of keys.

        Overflow-safe: for ``p`` large enough that ``acc * x + c`` could
        exceed int64 (``p`` beyond ~2^31 with comparably large keys),
        evaluation falls back to exact Python-int arithmetic and still
        matches :meth:`__call__` bit for bit.
        """
        out = mod_horner_array(self.coeffs, xs, self.p) % self.m
        if out.dtype == object:
            out = out.astype(np.int64)
        return out


class PolynomialHashFamily:
    """Degree-(k-1) polynomial family over ``F_p``, reduced mod ``m``."""

    def __init__(self, p: int, k: int, m: int):
        if not is_prime(p):
            raise ParameterError(f"modulus must be prime, got {p}")
        if k < 1:
            raise ParameterError(f"independence k must be >= 1, got {k}")
        if m < 1 or m > p:
            raise ParameterError(f"range size m={m} must be in [1, p]")
        self.p = p
        self.k = k
        self.m = m

    @property
    def size(self) -> int:
        """``|H| = p^k`` (poly(n) for constant k, as Algorithm 3 requires)."""
        return self.p**self.k

    def seed_bits(self) -> int:
        """Random bits to select a member: ``k * ceil(log2 p)``."""
        return self.k * max(1, (self.p - 1).bit_length())

    def function(self, coeffs) -> PolynomialFunction:
        """The member with the given coefficient vector (length k)."""
        coeffs = tuple(int(c) % self.p for c in coeffs)
        if len(coeffs) != self.k:
            raise ParameterError(f"need exactly {self.k} coefficients")
        return PolynomialFunction(coeffs, self.p, self.m)

    def sample(self, rng) -> PolynomialFunction:
        """Uniformly random member."""
        coeffs = tuple(rng.randint(0, self.p - 1) for _ in range(self.k))
        return PolynomialFunction(coeffs, self.p, self.m)

    # ------------------------------------------------------------------
    # batched API: many members at once, evaluated over arrays of keys
    # ------------------------------------------------------------------
    def coeff_array(self, rng, shape) -> np.ndarray:
        """Coefficient tensor for a batch of members, shape ``shape + (k,)``.

        Draws ``prod(shape) * k`` uniform coefficients from ``rng.np`` in
        one call — the vectorized counterpart of calling :meth:`sample`
        per member.  The random-bit accounting is unchanged: callers charge
        ``seed_bits()`` per member exactly as on the scalar path.
        """
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        return rng.np.integers(0, self.p, size=shape + (self.k,), dtype=np.int64)

    def eval_coeffs(self, coeffs: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """Evaluate every member of a coefficient tensor at every key.

        ``coeffs`` has shape ``members_shape + (k,)`` (low-to-high degree,
        as from :meth:`coeff_array`); ``xs`` is a 1-d key array.  Returns
        values in ``[0, m)`` with shape ``(len(xs),) + members_shape``,
        using the same overflow-safe path as
        :meth:`PolynomialFunction.eval_array`.

        The int64 paths (mod-free and per-step reduction) run through the
        kernel-dispatch layer; the Python-int fallback for primes beyond
        the int64 domain stays pure numpy by construction.
        """
        coeffs = np.asarray(coeffs)
        xs = np.asarray(xs)
        members_shape = coeffs.shape[:-1]
        xmax = int(np.abs(xs).max()) if xs.size else 0
        big = (self.p - 1) * (xmax + 1) + (self.p - 1) >= 2**63
        if not big:
            from repro.kernels import dispatch

            coeffs2 = np.ascontiguousarray(
                coeffs, dtype=np.int64
            ).reshape(-1, self.k)
            xs64 = np.ascontiguousarray(xs, dtype=np.int64)
            stepwise = not horner_fits_int64(self.k, xmax, self.p)
            vals = dispatch("eval_coeffs", coeffs2, xs64, self.p, stepwise)
            return (vals % self.m).reshape((len(xs),) + members_shape)
        x_col = xs.astype(object).reshape((len(xs),) + (1,) * len(members_shape))
        acc = np.zeros((len(xs),) + members_shape, dtype=object)
        for d in range(self.k - 1, -1, -1):
            acc = (acc * x_col + coeffs[..., d].astype(object)) % self.p
        return (acc % self.m).astype(np.int64)
