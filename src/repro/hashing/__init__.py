"""Hash families and random oracles used by the paper's algorithms.

- :class:`CarterWegmanFamily` — the 2-independent affine family over ``F_p``
  that Algorithm 1 searches (line 16).
- :class:`PolynomialHashFamily` — k-independent polynomial hashing;
  Algorithm 3 needs the 4-independent case (Lemma 4.8's variance bound).
- :class:`TwoUniversalFamily` — ``((ax+b) mod p) mod s``; used by the
  Lemma 3.10 partition family and the deterministic baselines.
- :class:`RandomOracle` — lazily-materialized truly uniform functions, the
  ``O(n Delta)`` random-bit oracle Theorem 3 assumes.
- :class:`PartitionFamily` — the family of partitions of a color set from
  Lemma 3.10 (built on a 2-universal family).
"""

from repro.hashing.carter_wegman import AffineFunction, CarterWegmanFamily
from repro.hashing.kindependent import PolynomialHashFamily
from repro.hashing.partitions import PartitionFamily
from repro.hashing.random_oracle import RandomOracle
from repro.hashing.universal import TwoUniversalFamily

__all__ = [
    "AffineFunction",
    "CarterWegmanFamily",
    "PartitionFamily",
    "PolynomialHashFamily",
    "RandomOracle",
    "TwoUniversalFamily",
]
