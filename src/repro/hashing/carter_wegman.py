"""The Carter-Wegman affine hash family over a prime field.

``H = { x -> (a x + b) mod p : a, b in F_p }`` is a 2-independent family of
functions ``[p] -> [p]`` of size ``p^2``.  Algorithm 1 (line 16) picks
``p`` prime in ``[8 n log n, 16 n log n]`` and searches this family for a
function whose induced tightening of the partially committed coloring has
near-average potential.

The family's key structural property, exploited by the stage implementation
(``repro.core.stage``): for a fixed coefficient ``a`` and a fixed pair of
distinct points ``u, v``, as ``b`` ranges over ``F_p`` the value
``t = h(u)`` ranges over all of ``F_p`` exactly once, and ``h(v) = t + a(v-u)
mod p`` is a fixed cyclic shift of it.  This lets a streaming pass evaluate
the *sum over a whole part* ``{h_{a, b} : b in F_p}`` of any per-edge
statistic in closed form, which is how the ``sqrt(|H|)``-way part search of
lines 20-26 is realized.
"""

from dataclasses import dataclass

from repro.common.exceptions import ParameterError
from repro.common.integer_math import is_prime, mod_horner_array


@dataclass(frozen=True)
class AffineFunction:
    """A single member ``x -> (a x + b) mod p`` of the family."""

    a: int
    b: int
    p: int

    def __call__(self, x: int) -> int:
        return (self.a * x + self.b) % self.p

    def eval_array(self, xs):
        """Vectorized (overflow-safe) evaluation over an integer key array."""
        return mod_horner_array((self.b, self.a), xs, self.p)


class CarterWegmanFamily:
    """The full affine family over ``F_p``; 2-independent on ``[p] -> [p]``."""

    def __init__(self, p: int):
        if not is_prime(p):
            raise ParameterError(f"Carter-Wegman modulus must be prime, got {p}")
        self.p = p

    @property
    def size(self) -> int:
        """``|H| = p^2``."""
        return self.p * self.p

    def function(self, a: int, b: int) -> AffineFunction:
        """The member with coefficients ``(a, b)``."""
        if not (0 <= a < self.p and 0 <= b < self.p):
            raise ParameterError(f"coefficients ({a}, {b}) out of F_{self.p}")
        return AffineFunction(a, b, self.p)

    def sample(self, rng) -> AffineFunction:
        """Uniformly random member (used only by randomized baselines)."""
        return AffineFunction(rng.randint(0, self.p - 1), rng.randint(0, self.p - 1), self.p)

    def parts(self):
        """The canonical split of H into ``p`` parts of size ``p``, keyed by ``a``.

        This realizes line 21 of Algorithm 1 ("split H into sqrt(|H|)
        parts"): part ``a`` is ``{h_{a,b} : b in F_p}``.
        """
        return range(self.p)
