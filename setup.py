"""Setuptools shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks PEP 660
editable-wheel support (e.g. offline boxes without the ``wheel`` package,
via ``--no-use-pep517``).
"""

from setuptools import setup

setup()
